package pubsub

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"strata/internal/obslog"
)

var (
	// ErrDisconnected is returned by operations that need a live link
	// (e.g. Ping) while a ReconnectConn is between connections.
	ErrDisconnected = errors.New("pubsub: disconnected")

	// ErrPendingOverflow is returned by Publish on a disconnected
	// ReconnectConn whose pending buffer is full under the DropNewest
	// policy.
	ErrPendingOverflow = errors.New("pubsub: pending-publish buffer full")

	// ErrReconnectExhausted reports that a ReconnectConn gave up after its
	// configured number of reconnect attempts and closed itself.
	ErrReconnectExhausted = errors.New("pubsub: reconnect attempts exhausted")
)

// reconnectConfig holds the tuning knobs of a ReconnectConn.
type reconnectConfig struct {
	minBackoff    time.Duration
	maxBackoff    time.Duration
	maxReconnects int // consecutive failed dials per outage; 0 = unlimited
	pendingLimit  int
	pendingPolicy OverflowPolicy
	heartbeat     time.Duration
	pingTimeout   time.Duration
	dialOpts      []DialOption

	// Circuit breaker (see breaker.go); threshold 0 disables.
	breakerThreshold int
	breakerCooldown  time.Duration
	onBreaker        func(BreakerState)

	onConnected    func()
	onDisconnected func(error)
	onReconnected  func()
	onClosed       func()
}

// ReconnectOption customizes DialReconnect.
type ReconnectOption func(*reconnectConfig)

// WithReconnectWait sets the backoff range between redial attempts: waits
// start near min, double per consecutive failure, and are capped at max,
// with jitter so a fleet of clients does not reconnect in lockstep.
// Defaults: 50ms to 2s.
func WithReconnectWait(min, max time.Duration) ReconnectOption {
	return func(c *reconnectConfig) {
		if min > 0 {
			c.minBackoff = min
		}
		if max >= c.minBackoff {
			c.maxBackoff = max
		}
	}
}

// WithMaxReconnects bounds the consecutive failed redials tolerated during
// one outage; when exceeded the ReconnectConn closes itself (subscriptions
// end, Publish returns ErrClosed). 0, the default, retries forever.
func WithMaxReconnects(n int) ReconnectOption {
	return func(c *reconnectConfig) { c.maxReconnects = n }
}

// WithPendingLimit caps how many publishes are buffered while disconnected
// (default 1024). What happens beyond the cap is set by WithPendingOverflow.
func WithPendingLimit(n int) ReconnectOption {
	return func(c *reconnectConfig) {
		if n > 0 {
			c.pendingLimit = n
		}
	}
}

// WithPendingOverflow sets the full-buffer policy for publishes while
// disconnected: Block (default) parks Publish until the buffer drains or
// the conn closes; DropOldest evicts the oldest buffered publish;
// DropNewest rejects the new publish with ErrPendingOverflow.
func WithPendingOverflow(p OverflowPolicy) ReconnectOption {
	return func(c *reconnectConfig) { c.pendingPolicy = p }
}

// WithHeartbeat sets the liveness probe: every interval the client pings the
// server and treats a pong missing for timeout as a dead link, forcing a
// reconnect. It is how half-open TCP connections (peer gone, no FIN) are
// detected. Defaults: 30s interval, 5s timeout; interval <= 0 disables.
func WithHeartbeat(interval, timeout time.Duration) ReconnectOption {
	return func(c *reconnectConfig) {
		c.heartbeat = interval
		if timeout > 0 {
			c.pingTimeout = timeout
		}
	}
}

// WithDialOptions forwards connection-level options (e.g.
// WithDialFlushInterval) to every underlying Dial, including redials.
func WithDialOptions(opts ...DialOption) ReconnectOption {
	return func(c *reconnectConfig) { c.dialOpts = append(c.dialOpts, opts...) }
}

// WithConnectedHandler registers a callback fired once when the initial
// connection is established.
func WithConnectedHandler(fn func()) ReconnectOption {
	return func(c *reconnectConfig) { c.onConnected = fn }
}

// WithDisconnectedHandler registers a callback fired when the link drops,
// with the error that killed it.
func WithDisconnectedHandler(fn func(error)) ReconnectOption {
	return func(c *reconnectConfig) { c.onDisconnected = fn }
}

// WithReconnectedHandler registers a callback fired after every successful
// reconnect, once subscriptions are restored and buffered publishes flushed.
func WithReconnectedHandler(fn func()) ReconnectOption {
	return func(c *reconnectConfig) { c.onReconnected = fn }
}

// WithClosedHandler registers a callback fired when the conn is closed for
// good (explicit Close or reconnect budget exhausted).
func WithClosedHandler(fn func()) ReconnectOption {
	return func(c *reconnectConfig) { c.onClosed = fn }
}

// pendingPub is one publish buffered while disconnected. Data is an owned
// copy: the caller may reuse its slice after Publish returns.
type pendingPub struct {
	subject string
	reply   string
	data    []byte
	tp      string // traceparent, if the publish carried trace context
}

// ReconnectConn is a self-healing client connection to a pubsub Server. It
// wraps Conn with automatic redial (exponential backoff plus jitter),
// re-subscription of every active subscription after a reconnect, a bounded
// buffer for publishes issued while disconnected, optional heartbeat-based
// liveness, and connection-state callbacks. It is the client a pipeline that
// must survive an hours-long PBF-LB build should use. Safe for concurrent
// use.
type ReconnectConn struct {
	addr string
	cfg  reconnectConfig

	// breaker fast-fails publishes after repeated link failures (nil
	// without WithBreaker).
	breaker *breaker

	mu         sync.Mutex
	notFull    *sync.Cond // pending buffer drained / state changed
	conn       *Conn      // nil while disconnected
	closed     bool
	subs       map[uint64]*ReconnectSub
	nextID     uint64
	pending    []pendingPub
	reconnects uint64
	dropped    uint64
	// hbErr is a heartbeat failure to report on the next disconnect, tagged
	// with the link it was observed on: a heartbeat goroutine can outlive
	// its link by up to pingTimeout, and its stale error must not be blamed
	// for a later, unrelated disconnect.
	hbErr   error
	hbConn  *Conn
	lastErr error // why the conn closed, when it closed itself

	quit chan struct{} // closed by Close / self-close
	done chan struct{} // closed when the supervisor exits
}

// ReconnectSub is a durable subscription on a ReconnectConn: its channel C
// stays open across reconnects (the underlying server-side subscription is
// re-established on every new link). Messages published while the link is
// down are not delivered — the broker has no per-subscriber persistence —
// but the subscription itself survives.
type ReconnectSub struct {
	C <-chan Message

	ch      chan Message
	rc      *ReconnectConn
	id      uint64
	pattern string
	opts    []SubOption

	inner *ClientSub // current link's subscription; guarded by rc.mu

	// Same shutdown protocol as ClientSub: quit aborts a blocked delivery,
	// then dead is set and ch closed under sendMu.
	quit   chan struct{}
	sendMu sync.Mutex
	dead   bool
	once   sync.Once
}

func (s *ReconnectSub) shutdown() {
	s.once.Do(func() {
		close(s.quit)
		s.sendMu.Lock()
		s.dead = true
		close(s.ch)
		s.sendMu.Unlock()
	})
}

func (s *ReconnectSub) deliver(msg Message) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.dead {
		return
	}
	// Same shape as ClientSub.deliver: the lock serializes the send
	// against shutdown's close, and quit (closed before shutdown takes
	// sendMu) bounds the wait. (Justified in DESIGN.md.)
	//lint:ignore locksend the lock serializes this send against close; quit bounds it
	select {
	case s.ch <- msg:
	case <-s.quit:
	}
}

// Pattern returns the subscription's pattern.
func (s *ReconnectSub) Pattern() string { return s.pattern }

// Unsubscribe permanently ends the subscription (it is not restored on
// future reconnects) and closes C. Safe to call twice.
func (s *ReconnectSub) Unsubscribe() error {
	rc := s.rc
	rc.mu.Lock()
	_, active := rc.subs[s.id]
	delete(rc.subs, s.id)
	inner := s.inner
	s.inner = nil
	rc.mu.Unlock()
	s.shutdown()
	if !active || inner == nil {
		return nil
	}
	err := inner.Unsubscribe()
	if errors.Is(err, ErrClosed) {
		return nil // link died underneath us; server side is gone anyway
	}
	return err
}

// DialReconnect connects to a pubsub server at addr and keeps the
// connection alive: if the link drops, it redials with backoff, restores
// every subscription, and flushes publishes buffered meanwhile. The initial
// dial is synchronous and its failure is returned directly.
func DialReconnect(addr string, opts ...ReconnectOption) (*ReconnectConn, error) {
	cfg := reconnectConfig{
		minBackoff:    50 * time.Millisecond,
		maxBackoff:    2 * time.Second,
		pendingLimit:  1024,
		pendingPolicy: Block,
		heartbeat:     30 * time.Second,
		pingTimeout:   5 * time.Second,
	}
	for _, o := range opts {
		o(&cfg)
	}
	conn, err := Dial(addr, cfg.dialOpts...)
	if err != nil {
		return nil, err
	}
	rc := &ReconnectConn{
		addr: addr,
		cfg:  cfg,
		conn: conn,
		subs: make(map[uint64]*ReconnectSub),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.breakerThreshold > 0 {
		rc.breaker = newBreaker(cfg.breakerThreshold, cfg.breakerCooldown, cfg.onBreaker)
	}
	rc.notFull = sync.NewCond(&rc.mu)
	if cfg.onConnected != nil {
		cfg.onConnected()
	}
	go rc.supervise(conn)
	return rc, nil
}

// IsConnected reports whether a live link currently exists.
func (rc *ReconnectConn) IsConnected() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.conn != nil && !rc.closed
}

// Reconnects returns how many times the conn has successfully reconnected.
func (rc *ReconnectConn) Reconnects() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.reconnects
}

// PendingDropped returns how many buffered publishes were discarded by the
// overflow policy.
func (rc *ReconnectConn) PendingDropped() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.dropped
}

// Pending returns how many publishes are currently buffered awaiting a
// reconnect.
func (rc *ReconnectConn) Pending() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.pending)
}

// ActiveSubscriptions returns how many durable subscriptions are currently
// established on the live link (registered subscriptions awaiting a
// reconnect don't count). A subscription counts only once its wire
// subscribe has been sent AND the link it was sent on has been installed as
// the live connection: during a restore, subscriptions are attached to the
// incoming link before its corked SUB frames are flushed, and counting that
// mid-restore window would let a readiness probe declare a consumer ready
// while its subscribe still sits in a userspace buffer. ActiveSubscriptions
// > 0 followed by a Ping round-trip therefore proves the broker is
// delivering to it — the readiness probe a consumer process should run
// before telling producers to start.
func (rc *ReconnectConn) ActiveSubscriptions() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.conn == nil {
		return 0
	}
	n := 0
	for _, s := range rc.subs {
		if s.inner != nil && s.inner.conn == rc.conn {
			n++
		}
	}
	return n
}

// Err returns why the conn closed itself (e.g. ErrReconnectExhausted), or
// nil while it is alive or after an explicit Close.
func (rc *ReconnectConn) Err() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lastErr
}

// Publish sends data under subject, buffering it if the link is currently
// down (see WithPendingLimit / WithPendingOverflow). The data slice may be
// reused by the caller after Publish returns.
func (rc *ReconnectConn) Publish(subject string, data []byte) error {
	return rc.PublishRequest(subject, "", data)
}

// PublishRequest is Publish with a reply subject attached.
func (rc *ReconnectConn) PublishRequest(subject, reply string, data []byte) error {
	return rc.PublishMsg(Message{Subject: subject, Reply: reply, Data: data})
}

// PublishMsg publishes m, carrying m.Traceparent across the wire (and across
// an outage: a buffered publish keeps its trace context and continues the
// span when flushed after reconnect).
func (rc *ReconnectConn) PublishMsg(m Message) error {
	if err := ValidateSubject(m.Subject); err != nil {
		return err
	}
	if total := 1 + 2 + len(m.Traceparent) + 2 + len(m.Subject) + 2 + len(m.Reply) + len(m.Data); total > maxFrameSize {
		// Reject oversized publishes before buffering: a poison message in
		// the pending buffer would wedge every future flush.
		return fmt.Errorf("pubsub: frame too large (%d bytes)", total)
	}
	// Breaker gate, checked before any buffering: while open, publishes
	// fast-fail instead of growing the pending buffer during an outage the
	// breaker already knows about.
	if rc.breaker != nil && !rc.breaker.allow() {
		return ErrBreakerOpen
	}
	rc.mu.Lock()
	for {
		if rc.closed {
			rc.mu.Unlock()
			return ErrClosed
		}
		if conn := rc.conn; conn != nil {
			rc.mu.Unlock()
			if err := conn.PublishMsg(m); err == nil {
				if rc.breaker != nil {
					rc.breaker.success()
				}
				return nil
			}
			// The link died mid-publish. Fall through to buffering so the
			// message rides out the outage instead of being lost.
			rc.mu.Lock()
			if rc.conn == conn {
				// The supervisor has not detached the dead conn yet; do it
				// here so this loop cannot spin on a corpse.
				rc.conn = nil
			}
			continue
		}
		// Disconnected: buffer a copy (the caller may reuse data). The
		// breaker counts this as a failure — the message is safe in the
		// buffer, but the link is down, and enough of these in a row trip
		// the breaker so later publishes stop paying for the outage.
		if len(rc.pending) < rc.cfg.pendingLimit {
			rc.pending = append(rc.pending, pendingPub{subject: m.Subject, reply: m.Reply, data: append([]byte(nil), m.Data...), tp: m.Traceparent})
			rc.mu.Unlock()
			if rc.breaker != nil {
				rc.breaker.failure()
			}
			return nil
		}
		switch rc.cfg.pendingPolicy {
		case DropOldest:
			copy(rc.pending, rc.pending[1:])
			rc.pending[len(rc.pending)-1] = pendingPub{subject: m.Subject, reply: m.Reply, data: append([]byte(nil), m.Data...), tp: m.Traceparent}
			rc.dropped++
			rc.mu.Unlock()
			if rc.breaker != nil {
				rc.breaker.failure()
			}
			return nil
		case DropNewest:
			rc.dropped++
			rc.mu.Unlock()
			if rc.breaker != nil {
				rc.breaker.failure()
			}
			return ErrPendingOverflow
		default: // Block
			rc.notFull.Wait()
		}
	}
}

// Subscribe registers a durable subscription: it is established on the
// current link (or on the next one, if currently disconnected) and
// re-established automatically after every reconnect.
func (rc *ReconnectConn) Subscribe(pattern string, opts ...SubOption) (*ReconnectSub, error) {
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	cfg := subConfig{buffer: 256}
	for _, o := range opts {
		o(&cfg)
	}
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil, ErrClosed
	}
	rc.nextID++
	id := rc.nextID
	ch := make(chan Message, cfg.buffer)
	s := &ReconnectSub{
		C: ch, ch: ch, rc: rc, id: id,
		pattern: pattern, opts: opts,
		quit: make(chan struct{}),
	}
	rc.subs[id] = s
	conn := rc.conn
	rc.mu.Unlock()

	if conn != nil {
		rc.attach(conn, s)
	}
	// While disconnected the subscription stays registered with inner ==
	// nil; restore() attaches it when the next link comes up.
	return s, nil
}

// attach establishes s on conn, wiring a forwarder from the link-scoped
// inner subscription into s's durable channel. A failure leaves s
// unattached (inner == nil) for the next restore to pick up.
func (rc *ReconnectConn) attach(conn *Conn, s *ReconnectSub) bool {
	inner, err := conn.Subscribe(s.pattern, s.opts...)
	if err != nil {
		return false
	}
	rc.mu.Lock()
	_, active := rc.subs[s.id]
	if !active || rc.conn != conn || s.inner != nil {
		rc.mu.Unlock()
		inner.Unsubscribe()
		return !active // unsubscribed concurrently: nothing left to do
	}
	s.inner = inner
	rc.mu.Unlock()
	go func() {
		for msg := range inner.C {
			s.deliver(msg)
		}
	}()
	return true
}

// Ping round-trips a ping on the current link.
func (rc *ReconnectConn) Ping(timeout time.Duration) error {
	rc.mu.Lock()
	conn := rc.conn
	closed := rc.closed
	rc.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if conn == nil {
		return ErrDisconnected
	}
	return conn.Ping(timeout)
}

// Close permanently tears down the conn: the supervisor stops, every
// subscription channel closes, and buffered publishes are discarded.
func (rc *ReconnectConn) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return ErrClosed
	}
	rc.closed = true
	conn := rc.conn
	rc.conn = nil
	subs := make([]*ReconnectSub, 0, len(rc.subs))
	for _, s := range rc.subs {
		subs = append(subs, s)
	}
	rc.subs = make(map[uint64]*ReconnectSub)
	rc.pending = nil
	rc.notFull.Broadcast()
	rc.mu.Unlock()

	close(rc.quit)
	if conn != nil {
		_ = conn.Close() // tearing down; a dead link closing dirty is fine
	}
	for _, s := range subs {
		s.shutdown()
	}
	<-rc.done
	if rc.cfg.onClosed != nil {
		rc.cfg.onClosed()
	}
	return nil
}

// supervise owns the connection lifecycle: wait for the live link to drop,
// then redial-with-backoff, restore subscriptions, flush pending publishes,
// and go back to waiting. It exits when the conn closes (explicitly or by
// exhausting its reconnect budget).
func (rc *ReconnectConn) supervise(conn *Conn) {
	defer close(rc.done)
	for {
		rc.startHeartbeat(conn)
		select {
		case <-conn.done: // link dropped
		case <-rc.quit: // Close()
			return
		}
		err := conn.err()
		_ = conn.Close() // release resources; already torn down, best-effort

		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			return
		}
		if rc.hbErr != nil && rc.hbConn == conn {
			err = rc.hbErr
		}
		rc.hbErr, rc.hbConn = nil, nil
		rc.conn = nil
		for _, s := range rc.subs {
			s.inner = nil // link-scoped subscriptions died with the conn
		}
		rc.mu.Unlock()
		obslog.L("pubsub").Warn("link down", "addr", rc.addr, "error", fmt.Sprint(err))
		if rc.cfg.onDisconnected != nil {
			rc.cfg.onDisconnected(err)
		}

		next, ok := rc.redial()
		if !ok {
			return
		}
		conn = next
		rc.mu.Lock()
		rc.reconnects++
		n := rc.reconnects
		pending := len(rc.pending)
		rc.mu.Unlock()
		obslog.L("pubsub").Info("reconnected", "addr", rc.addr, "reconnects", n, "pending", pending)
		if rc.cfg.onReconnected != nil {
			rc.cfg.onReconnected()
		}
	}
}

// redial dials with exponential backoff and jitter until a link is up and
// fully restored, the attempt budget runs out (the conn then closes itself
// with ErrReconnectExhausted), or the conn is closed.
func (rc *ReconnectConn) redial() (*Conn, bool) {
	for attempt := 0; ; attempt++ {
		if rc.cfg.maxReconnects > 0 && attempt >= rc.cfg.maxReconnects {
			rc.selfClose(fmt.Errorf("%w (after %d attempts)", ErrReconnectExhausted, attempt))
			return nil, false
		}
		select {
		case <-time.After(rc.backoff(attempt)):
		case <-rc.quit:
			return nil, false
		}
		conn, err := Dial(rc.addr, rc.cfg.dialOpts...)
		if err != nil {
			continue
		}
		switch err := rc.restore(conn); {
		case err == nil:
			return conn, true
		case errors.Is(err, ErrClosed):
			_ = conn.Close() // conn was never installed; nothing depends on it
			return nil, false
		default:
			// The fresh link died during restore; count it as a failed
			// attempt and keep dialing.
			_ = conn.Close()
		}
	}
}

// restore re-establishes every registered subscription on conn and flushes
// the pending-publish buffer, then installs conn as the live link. It loops
// until no unattached subscriptions and no pending publishes remain, so
// Subscribe/Publish calls racing the restore are not stranded.
func (rc *ReconnectConn) restore(conn *Conn) error {
	for {
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			return ErrClosed
		}
		var todo []*ReconnectSub
		for _, s := range rc.subs {
			if s.inner == nil {
				todo = append(todo, s)
			}
		}
		if len(todo) == 0 && len(rc.pending) == 0 {
			rc.conn = conn
			rc.notFull.Broadcast()
			rc.mu.Unlock()
			return nil
		}
		batch := rc.pending
		rc.pending = nil
		rc.mu.Unlock()

		// Re-subscribes go through the corked writer: each SUB frame is
		// buffered, and one flush below pushes the whole batch in a single
		// syscall — a client with hundreds of subscriptions restores its
		// state in one write instead of one flush per subscription.
		for _, s := range todo {
			inner, err := conn.subscribe(s.pattern, false, s.opts...)
			if err != nil {
				rc.requeue(batch, 0)
				rc.detach(conn)
				return err
			}
			rc.mu.Lock()
			_, active := rc.subs[s.id]
			if !active {
				rc.mu.Unlock()
				inner.Unsubscribe()
				continue
			}
			s.inner = inner
			rc.mu.Unlock()
			go func() {
				for msg := range inner.C {
					s.deliver(msg)
				}
			}()
		}
		for i, pb := range batch {
			if err := conn.PublishMsg(Message{Subject: pb.subject, Reply: pb.reply, Data: pb.data, Traceparent: pb.tp}); err != nil {
				rc.requeue(batch, i)
				rc.detach(conn)
				return err
			}
		}
		// One flush covers the batched SUB frames and any corked publishes.
		// On error the whole batch is requeued: some frames may already have
		// reached the wire (the background flusher runs concurrently), which
		// mirrors the old per-frame path where a flushed-to-kernel frame's
		// fate was equally unknown when the link died.
		if err := conn.flush(); err != nil {
			rc.requeue(batch, 0)
			rc.detach(conn)
			return err
		}
	}
}

// detach resets inner for every subscription attached on conn. A restore
// that fails partway (the fresh link died after some subscriptions were
// re-established) must call this before the conn is abandoned: the
// supervisor only clears inner for the *installed* conn, and restore only
// re-attaches subscriptions whose inner is nil, so a stale inner left
// pointing at a never-installed conn would keep that subscription silent on
// every future link.
func (rc *ReconnectConn) detach(conn *Conn) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, s := range rc.subs {
		if s.inner != nil && s.inner.conn == conn {
			s.inner = nil
		}
	}
}

// requeue puts the unflushed tail of batch back at the front of the pending
// buffer, preserving publish order for the next restore.
func (rc *ReconnectConn) requeue(batch []pendingPub, from int) {
	if from >= len(batch) {
		return
	}
	rc.mu.Lock()
	merged := make([]pendingPub, 0, len(batch)-from+len(rc.pending))
	merged = append(merged, batch[from:]...)
	merged = append(merged, rc.pending...)
	rc.pending = merged
	rc.mu.Unlock()
}

// selfClose shuts the conn down from inside the supervisor (reconnect
// budget exhausted), recording why in Err.
func (rc *ReconnectConn) selfClose(err error) {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return
	}
	rc.closed = true
	rc.lastErr = err
	subs := make([]*ReconnectSub, 0, len(rc.subs))
	for _, s := range rc.subs {
		subs = append(subs, s)
	}
	rc.subs = make(map[uint64]*ReconnectSub)
	rc.pending = nil
	rc.notFull.Broadcast()
	rc.mu.Unlock()
	for _, s := range subs {
		s.shutdown()
	}
	if rc.cfg.onClosed != nil {
		rc.cfg.onClosed()
	}
}

// startHeartbeat probes conn's liveness every cfg.heartbeat: a ping whose
// pong does not arrive within cfg.pingTimeout closes the link, which the
// supervisor observes as a disconnect and repairs. Detects half-open
// connections that TCP alone would keep "established" for hours.
func (rc *ReconnectConn) startHeartbeat(conn *Conn) {
	if rc.cfg.heartbeat <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(rc.cfg.heartbeat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := conn.Ping(rc.cfg.pingTimeout); err != nil {
					rc.mu.Lock()
					rc.hbErr = fmt.Errorf("pubsub: heartbeat failed: %w", err)
					rc.hbConn = conn
					rc.mu.Unlock()
					_ = conn.Close() // deliberately killing a link that failed its ping
					return
				}
			case <-conn.done:
				return
			case <-rc.quit:
				return
			}
		}
	}()
}

// backoff returns the wait before redial attempt n: exponential from
// minBackoff, capped at maxBackoff, with jitter over the upper half of the
// interval so independent clients spread out.
func (rc *ReconnectConn) backoff(attempt int) time.Duration {
	d := rc.cfg.maxBackoff
	if attempt < 30 {
		if exp := rc.cfg.minBackoff << uint(attempt); exp < d {
			d = exp
		}
	}
	if d <= 1 {
		return d
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}
