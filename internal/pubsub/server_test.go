package pubsub

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// startTestServer runs a broker + TCP server on a loopback port.
func startTestServer(t *testing.T) (*Broker, *Server) {
	t.Helper()
	b := NewBroker()
	srv, err := Serve(b, "127.0.0.1:0", WithServerLogf(t.Logf))
	if err != nil {
		t.Fatalf("Serve() error = %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		b.Close()
	})
	return b, srv
}

func dialTest(t *testing.T, srv *Server) *Conn {
	t.Helper()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial() error = %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTCPPublishToLocalSubscriber(t *testing.T) {
	b, srv := startTestServer(t)
	local, err := b.Subscribe("remote.>")
	if err != nil {
		t.Fatal(err)
	}
	client := dialTest(t, srv)
	if err := client.Publish("remote.data", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, local.C)
	if m.Subject != "remote.data" || string(m.Data) != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestTCPSubscribeReceivesLocalPublish(t *testing.T) {
	b, srv := startTestServer(t)
	client := dialTest(t, srv)
	sub, err := client.Subscribe("feed.*")
	if err != nil {
		t.Fatal(err)
	}
	// Ping to make sure the SUB frame was processed before publishing.
	if err := client.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("feed.a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, sub.C)
	if m.Subject != "feed.a" || string(m.Data) != "payload" {
		t.Fatalf("got %+v", m)
	}
}

func TestTCPClientToClient(t *testing.T) {
	_, srv := startTestServer(t)
	pubC := dialTest(t, srv)
	subC := dialTest(t, srv)
	sub, err := subC.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := subC.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := pubC.Publish("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m := recvOne(t, sub.C)
		if m.Data[0] != byte(i) {
			t.Fatalf("message %d out of order: %d", i, m.Data[0])
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	_, srv := startTestServer(t)
	pubC := dialTest(t, srv)
	subC := dialTest(t, srv)
	sub, err := subC.Subscribe("big")
	if err != nil {
		t.Fatal(err)
	}
	if err := subC.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// An 8 MiB payload, the size of a full-resolution OT image.
	big := make([]byte, 8<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := pubC.Publish("big", big); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, sub.C)
	if !bytes.Equal(m.Data, big) {
		t.Fatal("large payload corrupted in transit")
	}
}

func TestTCPUnsubscribeStopsDelivery(t *testing.T) {
	b, srv := startTestServer(t)
	client := dialTest(t, srv)
	sub, err := client.Subscribe("u")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("u", []byte("m")); err != nil {
		t.Fatal(err)
	}
	select {
	case m, ok := <-sub.C:
		if ok {
			t.Fatalf("received %+v after unsubscribe", m)
		}
	case <-time.After(50 * time.Millisecond):
	}
}

func TestTCPQueueGroupAcrossClients(t *testing.T) {
	_, srv := startTestServer(t)
	pubC := dialTest(t, srv)
	var subs []*ClientSub
	for i := 0; i < 3; i++ {
		c := dialTest(t, srv)
		s, err := c.Subscribe("jobs", WithQueue("workers"))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Ping(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := pubC.Publish("jobs", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Every message goes to exactly one member.
	deadline := time.After(5 * time.Second)
	counts := make([]int, len(subs))
	for total := 0; total < n; {
		progressed := false
		for i, s := range subs {
			select {
			case <-s.C:
				counts[i]++
				total++
				progressed = true
			default:
			}
		}
		if !progressed {
			select {
			case <-deadline:
				t.Fatalf("timed out: counts=%v", counts)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("member %d received nothing; counts=%v", i, counts)
		}
	}
}

func TestTCPServerCloseDisconnectsClients(t *testing.T) {
	b := NewBroker()
	srv, err := Serve(b, "127.0.0.1:0", WithServerLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := client.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Fatal("expected closed channel after server shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription did not close after server shutdown")
	}
	b.Close()
}

func TestTCPBadSubjectReportedViaErrFrame(t *testing.T) {
	_, srv := startTestServer(t)
	client := dialTest(t, srv)
	// Wildcards are invalid in publish subjects; the server answers with
	// an error frame, which surfaces on the next client operation.
	if err := client.Publish("a.*", []byte("x")); !errors.Is(err, ErrBadSubject) {
		t.Fatalf("Publish(bad subject) = %v, want client-side ErrBadSubject", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	b, srv := startTestServer(t)
	collector, err := b.Subscribe("c.>", WithSubBuffer(100000))
	if err != nil {
		t.Fatal(err)
	}
	const clients, each = 6, 300
	var wg sync.WaitGroup
	for p := 0; p < clients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("Dial error = %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < each; i++ {
				if err := c.Publish(fmt.Sprintf("c.p%d", p), []byte("m")); err != nil {
					t.Errorf("Publish error = %v", err)
					return
				}
			}
			if err := c.Ping(10 * time.Second); err != nil {
				t.Errorf("Ping error = %v", err)
			}
		}(p)
	}
	wg.Wait()
	got := 0
	timeout := time.After(10 * time.Second)
	for got < clients*each {
		select {
		case <-collector.C:
			got++
		case <-timeout:
			t.Fatalf("received %d, want %d", got, clients*each)
		}
	}
}
