package pubsub

import (
	"testing"
	"time"

	"strata/internal/telemetry"
)

// waitMsg receives one message from ch or fails the test.
func waitMsg(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("subscription channel closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	return Message{}
}

// TestTraceparentAcrossWire publishes a traced message through the full TCP
// path — client frame (opPubT), broker, server forwarding (opMsgT) — and
// checks the trace context arrives intact at a remote subscriber.
func TestTraceparentAcrossWire(t *testing.T) {
	broker := NewBroker()
	defer broker.Close()
	srv, err := Serve(broker, "127.0.0.1:0", WithServerLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pubConn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pubConn.Close()
	subConn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer subConn.Close()

	sub, err := subConn.Subscribe("traced.>")
	if err != nil {
		t.Fatal(err)
	}
	if err := subConn.Ping(5 * time.Second); err != nil { // subscribe applied
		t.Fatal(err)
	}

	tc, err := telemetry.ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	tp := tc.Traceparent()
	if err := pubConn.PublishMsg(Message{
		Subject:     "traced.alpha",
		Reply:       "traced.reply",
		Data:        []byte("payload"),
		Traceparent: tp,
	}); err != nil {
		t.Fatal(err)
	}

	got := waitMsg(t, sub.C)
	if got.Subject != "traced.alpha" || got.Reply != "traced.reply" || string(got.Data) != "payload" {
		t.Fatalf("message = %+v", got)
	}
	if got.Traceparent != tp {
		t.Fatalf("Traceparent = %q, want %q", got.Traceparent, tp)
	}
	if _, err := telemetry.ParseTraceparent(got.Traceparent); err != nil {
		t.Fatalf("delivered traceparent unparseable: %v", err)
	}

	// An untraced publish on the same connections still travels the plain
	// opPub/opMsg path and arrives with no trace context.
	if err := pubConn.Publish("traced.beta", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	got = waitMsg(t, sub.C)
	if got.Subject != "traced.beta" || got.Traceparent != "" {
		t.Fatalf("untraced message = %+v, want empty Traceparent", got)
	}
}

// TestBrokerTraceFragmentOnDelivery checks WithTraceFragments: a traced
// delivery leaves a sealed "deliver" span fragment under the message's trace
// ID in the broker's buffer.
func TestBrokerTraceFragmentOnDelivery(t *testing.T) {
	buf := telemetry.NewTraceBuffer(8)
	broker := NewBroker(WithTraceFragments(buf))
	defer broker.Close()

	sub, err := broker.Subscribe("frag.*")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	root := telemetry.NewTrace(1, "src")
	tc := root.Context()
	if err := broker.PublishMsg(Message{
		Subject:     "frag.a",
		Data:        []byte("x"),
		Traceparent: tc.Traceparent(),
	}); err != nil {
		t.Fatal(err)
	}
	waitMsg(t, sub.C)

	id := root.Snapshot().TraceID
	frags := buf.Find(id)
	if len(frags) != 1 {
		t.Fatalf("broker fragments for %s = %d, want 1", id, len(frags))
	}
	f := frags[0]
	if f.Label != "frag.a" && f.Label != "broker/frag.a" {
		t.Errorf("fragment label = %q, want broker/frag.a", f.Label)
	}
	if f.ParentSpanID != root.Snapshot().SpanID {
		t.Errorf("fragment parent = %q, want publisher span %q", f.ParentSpanID, root.Snapshot().SpanID)
	}
	if !f.Finished || len(f.Spans) != 1 || f.Spans[0].Op != "deliver" {
		t.Errorf("fragment = %+v, want one sealed deliver span", f)
	}

	// An unsampled or absent context leaves no fragment.
	if err := broker.Publish("frag.b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	waitMsg(t, sub.C)
	if got := buf.Len(); got != 1 {
		t.Errorf("buffer holds %d fragments after untraced publish, want 1", got)
	}
}

// TestReconnectConnBuffersTraceparent cuts the link, publishes a traced
// message into the reconnect buffer, and checks the trace context survives
// the flush after the link is restored.
func TestReconnectConnBuffersTraceparent(t *testing.T) {
	broker := NewBroker()
	defer broker.Close()
	srv, err := Serve(broker, "127.0.0.1:0", WithServerLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub, err := broker.Subscribe("rc.>")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	rc, err := DialReconnect(srv.Addr(),
		WithReconnectWait(10*time.Millisecond, 50*time.Millisecond),
		WithPendingLimit(64),
		WithPendingOverflow(DropNewest))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Sever the live conn; the next publish lands in the pending buffer.
	rc.mu.Lock()
	conn := rc.conn
	rc.mu.Unlock()
	conn.Close()

	tc := telemetry.NewTrace(7, "src").Context()
	tp := tc.Traceparent()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := rc.PublishMsg(Message{Subject: "rc.traced", Data: []byte("z"), Traceparent: tp}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("publish into reconnect buffer kept failing")
		}
		time.Sleep(time.Millisecond)
	}

	got := waitMsg(t, sub.C)
	if got.Subject != "rc.traced" || string(got.Data) != "z" {
		t.Fatalf("message = %+v", got)
	}
	if got.Traceparent != tp {
		t.Fatalf("Traceparent after reconnect flush = %q, want %q", got.Traceparent, tp)
	}
}
