package pubsub

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"strata/internal/faultinject"
)

// reconnectHarness wires broker → TCP server → fault-injection proxy →
// ReconnectConn, with state-change notifications exposed as channels.
type reconnectHarness struct {
	broker       *Broker
	srv          *Server
	proxy        *faultinject.Proxy
	rc           *ReconnectConn
	connected    chan struct{}
	disconnected chan error
	reconnected  chan struct{}
	closed       chan struct{}
}

func newReconnectHarness(t *testing.T, opts ...ReconnectOption) *reconnectHarness {
	t.Helper()
	h := &reconnectHarness{
		connected:    make(chan struct{}, 4),
		disconnected: make(chan error, 4),
		reconnected:  make(chan struct{}, 4),
		closed:       make(chan struct{}, 4),
	}
	h.broker = NewBroker()
	srv, err := Serve(h.broker, "127.0.0.1:0", WithServerLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	h.srv = srv
	proxy, err := faultinject.NewProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	h.proxy = proxy
	all := append([]ReconnectOption{
		WithReconnectWait(5*time.Millisecond, 50*time.Millisecond),
		WithConnectedHandler(func() { h.connected <- struct{}{} }),
		WithDisconnectedHandler(func(err error) { h.disconnected <- err }),
		WithReconnectedHandler(func() { h.reconnected <- struct{}{} }),
		WithClosedHandler(func() { h.closed <- struct{}{} }),
	}, opts...)
	rc, err := DialReconnect(proxy.Addr(), all...)
	if err != nil {
		t.Fatal(err)
	}
	h.rc = rc
	t.Cleanup(func() {
		rc.Close()
		proxy.Close()
		srv.Close()
		h.broker.Close()
	})
	return h
}

func waitSignal[T any](t *testing.T, ch <-chan T, what string) T {
	t.Helper()
	select {
	case v := <-ch:
		return v
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		panic("unreachable")
	}
}

func recvN(t *testing.T, ch <-chan Message, n int, what string) []Message {
	t.Helper()
	out := make([]Message, 0, n)
	for len(out) < n {
		select {
		case m := <-ch:
			out = append(out, m)
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: got %d of %d messages", what, len(out), n)
		}
	}
	return out
}

// TestReconnectRestoresSubscriptionsAndFlushesPending is the headline
// fault-injection scenario: the broker link is severed mid-stream; the
// client reconnects with backoff, restores its subscription, and flushes
// every publish buffered during the outage. Nothing acknowledged before the
// cut is lost, and no goroutines leak.
func TestReconnectRestoresSubscriptionsAndFlushesPending(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h := newReconnectHarness(t)

	sub, err := h.rc.Subscribe("bld.>")
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip a ping so the SUB frame is server-side before publishing.
	if err := h.rc.Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		if err := h.rc.Publish("bld.layer", []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pre := recvN(t, sub.C, 5, "pre-disconnect messages")
	for i, m := range pre {
		if want := fmt.Sprintf("pre-%d", i); string(m.Data) != want {
			t.Fatalf("pre message %d = %q, want %q", i, m.Data, want)
		}
	}

	// Cut the link mid-stream and wait until the client has noticed — only
	// then publish, so every message below must ride the pending buffer.
	h.proxy.Sever()
	waitSignal(t, h.disconnected, "disconnect notification")
	for i := 0; i < 5; i++ {
		if err := h.rc.Publish("bld.layer", []byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatalf("publish while disconnected: %v", err)
		}
	}

	waitSignal(t, h.reconnected, "reconnect notification")
	post := recvN(t, sub.C, 5, "post-reconnect messages")
	for i, m := range post {
		if want := fmt.Sprintf("post-%d", i); string(m.Data) != want {
			t.Fatalf("post message %d = %q, want %q (flush must preserve order)", i, m.Data, want)
		}
	}

	if got := h.rc.Reconnects(); got != 1 {
		t.Fatalf("Reconnects() = %d, want 1", got)
	}
	if got := h.rc.PendingDropped(); got != 0 {
		t.Fatalf("PendingDropped() = %d, want 0", got)
	}

	// Tear everything down and verify all goroutines (supervisor,
	// heartbeat, forwarders, server loops, proxy relays) wind up.
	if err := h.rc.Close(); err != nil {
		t.Fatal(err)
	}
	waitSignal(t, h.closed, "closed notification")
	h.proxy.Close()
	h.srv.Close()
	h.broker.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+1 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReconnectHeartbeatDetectsBlackhole exercises the failure mode
// heartbeats exist for: the link stays established but passes no traffic.
// The ping timeout must declare it dead and trigger a reconnect.
func TestReconnectHeartbeatDetectsBlackhole(t *testing.T) {
	h := newReconnectHarness(t, WithHeartbeat(20*time.Millisecond, 100*time.Millisecond))

	sub, err := h.rc.Subscribe("hb.>")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.rc.Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	h.proxy.Injector().Blackhole()
	err = waitSignal(t, h.disconnected, "heartbeat-driven disconnect")
	if err == nil {
		t.Fatal("disconnect handler should receive the heartbeat error")
	}
	waitSignal(t, h.reconnected, "reconnect after blackhole")

	// The restored subscription still works end-to-end.
	if err := h.rc.Publish("hb.check", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	m := recvN(t, sub.C, 1, "post-blackhole message")[0]
	if string(m.Data) != "alive" {
		t.Fatalf("got %q, want %q", m.Data, "alive")
	}
}

// TestReconnectSurvivesCorruptStream drops bytes on the wire so the framed
// protocol desynchronizes; both ends abandon the connection and the client
// transparently re-establishes it.
func TestReconnectSurvivesCorruptStream(t *testing.T) {
	// Heartbeats matter here: depending on which bytes vanish, the server
	// can end up blocked mid-frame waiting for data that never arrives, and
	// only a missed pong reveals the link is wedged.
	h := newReconnectHarness(t, WithHeartbeat(20*time.Millisecond, 100*time.Millisecond))

	sub, err := h.rc.Subscribe("c.>")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.rc.Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Swallow part of the next frame: its length prefix now lies.
	h.proxy.Injector().DropBytes(3)
	h.rc.Publish("c.x", []byte("mangled in transit"))

	waitSignal(t, h.disconnected, "disconnect after corruption")
	waitSignal(t, h.reconnected, "reconnect after corruption")

	if err := h.rc.Publish("c.x", []byte("clean")); err != nil {
		t.Fatal(err)
	}
	m := recvN(t, sub.C, 1, "post-corruption message")[0]
	if string(m.Data) != "clean" {
		t.Fatalf("got %q, want %q", m.Data, "clean")
	}
}

// TestReconnectGivesUpAfterMaxReconnects verifies the bounded-retry path:
// when the server is gone for good, the conn closes itself, reports
// ErrReconnectExhausted, and ends its subscriptions.
func TestReconnectGivesUpAfterMaxReconnects(t *testing.T) {
	h := newReconnectHarness(t, WithMaxReconnects(3))
	sub, err := h.rc.Subscribe("gone.>")
	if err != nil {
		t.Fatal(err)
	}

	// Take the whole proxy down: redials now fail outright.
	h.proxy.Close()

	waitSignal(t, h.disconnected, "disconnect")
	waitSignal(t, h.closed, "self-close after exhausting reconnects")

	if err := h.rc.Err(); !errors.Is(err, ErrReconnectExhausted) {
		t.Fatalf("Err() = %v, want ErrReconnectExhausted", err)
	}
	if err := h.rc.Publish("gone.x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after self-close = %v, want ErrClosed", err)
	}
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Fatal("unexpected message on dead subscription")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscription channel should be closed after self-close")
	}
}

// TestReconnectPendingOverflowPolicies pins down the explicit overflow
// behaviour of the pending-publish buffer.
func TestReconnectPendingOverflowPolicies(t *testing.T) {
	t.Run("DropNewest", func(t *testing.T) {
		h := newReconnectHarness(t, WithPendingLimit(2), WithPendingOverflow(DropNewest))
		h.proxy.Close() // no reconnect possible: publishes stay buffered
		waitSignal(t, h.disconnected, "disconnect")

		if err := h.rc.Publish("p.x", []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := h.rc.Publish("p.x", []byte("b")); err != nil {
			t.Fatal(err)
		}
		if err := h.rc.Publish("p.x", []byte("c")); !errors.Is(err, ErrPendingOverflow) {
			t.Fatalf("third publish = %v, want ErrPendingOverflow", err)
		}
		if got := h.rc.Pending(); got != 2 {
			t.Fatalf("Pending() = %d, want 2", got)
		}
		if got := h.rc.PendingDropped(); got != 1 {
			t.Fatalf("PendingDropped() = %d, want 1", got)
		}
	})
	t.Run("DropOldest", func(t *testing.T) {
		h := newReconnectHarness(t, WithPendingLimit(2), WithPendingOverflow(DropOldest))
		h.proxy.Close()
		waitSignal(t, h.disconnected, "disconnect")

		for _, payload := range []string{"a", "b", "c"} {
			if err := h.rc.Publish("p.x", []byte(payload)); err != nil {
				t.Fatalf("publish %q: %v", payload, err)
			}
		}
		if got := h.rc.Pending(); got != 2 {
			t.Fatalf("Pending() = %d, want 2", got)
		}
		if got := h.rc.PendingDropped(); got != 1 {
			t.Fatalf("PendingDropped() = %d, want 1", got)
		}
	})
}

// TestRestoreFailureDetachesPartialSubscriptions reproduces a fresh link
// dying mid-restore: a subscription has already been re-attached when the
// pending-publish flush fails, so restore returns an error and redial
// abandons the conn. The partially-attached subscription must be detached
// (inner reset to nil) — otherwise no future restore would ever re-subscribe
// it, and its channel would stay open yet silently deliver nothing for the
// rest of the build.
func TestRestoreFailureDetachesPartialSubscriptions(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	srv, err := Serve(b, "127.0.0.1:0", WithServerLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Build the ReconnectConn by hand, with no supervisor: the test plays
	// redial's role so the mid-restore failure is deterministic.
	rc := &ReconnectConn{
		addr: srv.Addr(),
		cfg:  reconnectConfig{pendingLimit: 16, pendingPolicy: Block},
		subs: make(map[uint64]*ReconnectSub),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	rc.notFull = sync.NewCond(&rc.mu)
	close(rc.done) // no supervisor will close it; lets Close() return
	defer rc.Close()

	sub, err := rc.Subscribe("mid.>") // disconnected: registered, unattached
	if err != nil {
		t.Fatal(err)
	}
	// A pending publish with an invalid subject fails the flush client-side,
	// deterministically, after the subscription was attached — leaving the
	// same partially-restored state as a link that dies mid-restore.
	rc.mu.Lock()
	rc.pending = []pendingPub{{subject: "poison..subject", data: []byte("x")}}
	rc.mu.Unlock()

	connA, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.restore(connA); err == nil {
		t.Fatal("restore should fail on the poisoned flush")
	}
	connA.Close() // redial's failure branch abandons the conn

	rc.mu.Lock()
	inner := sub.inner
	requeued := len(rc.pending)
	rc.pending = nil // the condition that failed the flush has passed
	rc.mu.Unlock()
	if inner != nil {
		t.Fatal("failed restore left the subscription attached to the abandoned conn")
	}
	if requeued == 0 {
		t.Fatal("failed flush should have requeued the unsent publish")
	}

	// The next restore pass (redial's retry) must re-establish the
	// subscription on the fresh link and deliver end-to-end.
	connB, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.restore(connB); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if err := rc.Ping(2 * time.Second); err != nil { // SUB frame is server-side
		t.Fatal(err)
	}
	if err := rc.Publish("mid.check", []byte("restored")); err != nil {
		t.Fatal(err)
	}
	if m := recvN(t, sub.C, 1, "post-restore message")[0]; string(m.Data) != "restored" {
		t.Fatalf("got %q, want %q", m.Data, "restored")
	}
}

// TestServerReapsIdleConnections covers the server half of liveness: a
// client that sends nothing (not even pings) is disconnected after the idle
// timeout, while a heartbeating client stays up indefinitely.
func TestServerReapsIdleConnections(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	srv, err := Serve(b, "127.0.0.1:0",
		WithServerLogf(func(string, ...any) {}),
		WithIdleTimeout(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Silent client: reaped.
	silent, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := silent.Ping(100 * time.Millisecond); err != nil {
			break // server cut us off
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection was never reaped")
		}
		// Pinging resets the idle clock, so back off beyond the timeout.
		time.Sleep(150 * time.Millisecond)
	}

	// Heartbeating client: survives many idle windows.
	rc, err := DialReconnect(srv.Addr(), WithHeartbeat(20*time.Millisecond, 500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	time.Sleep(300 * time.Millisecond) // 5× the idle timeout
	if !rc.IsConnected() {
		t.Fatal("heartbeating client should stay connected")
	}
	if got := rc.Reconnects(); got != 0 {
		t.Fatalf("heartbeating client reconnected %d times, want 0", got)
	}
}

// TestActiveSubscriptionsReadiness: ActiveSubscriptions counts only
// subscriptions established on the live link — 0 before any Subscribe,
// n after, back to 0 while the link is down, restored after reconnect, and
// decremented by Unsubscribe. It is the readiness probe a consumer runs
// before telling producers to start (see the obs-smoke worker).
func TestActiveSubscriptionsReadiness(t *testing.T) {
	h := newReconnectHarness(t)
	waitSignal(t, h.connected, "initial connect")

	if got := h.rc.ActiveSubscriptions(); got != 0 {
		t.Fatalf("ActiveSubscriptions before subscribing = %d, want 0", got)
	}
	sub, err := h.rc.Subscribe("act.>")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.rc.Subscribe("act.other"); err != nil {
		t.Fatal(err)
	}
	if got := h.rc.ActiveSubscriptions(); got != 2 {
		t.Fatalf("ActiveSubscriptions after two subscribes = %d, want 2", got)
	}

	h.proxy.Sever()
	waitSignal(t, h.disconnected, "disconnect")
	if got := h.rc.ActiveSubscriptions(); got != 0 {
		t.Errorf("ActiveSubscriptions while disconnected = %d, want 0 (registered, not established)", got)
	}
	waitSignal(t, h.reconnected, "reconnect")
	deadline := time.Now().Add(5 * time.Second)
	for h.rc.ActiveSubscriptions() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveSubscriptions after reconnect = %d, want 2", h.rc.ActiveSubscriptions())
		}
		time.Sleep(time.Millisecond)
	}

	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if got := h.rc.ActiveSubscriptions(); got != 1 {
		t.Errorf("ActiveSubscriptions after Unsubscribe = %d, want 1", got)
	}
}
