package pubsub

import (
	"fmt"
	"sync/atomic"
	"time"
)

// inboxPrefix namespaces the unique reply subjects of Request.
const inboxPrefix = "_INBOX"

// ErrNoResponder is returned by Request when no reply arrives in time
// (there is no responder, or it is too slow).
var ErrNoResponder = fmt.Errorf("pubsub: no response before timeout")

// inboxCounter makes in-process inbox subjects unique.
var inboxCounter atomic.Uint64

func nextInbox() string {
	return fmt.Sprintf("%s.%d", inboxPrefix, inboxCounter.Add(1))
}

// Request publishes data on subject with a unique reply inbox attached and
// waits for the first response, up to timeout. It is the synchronous
// command channel STRATA's feedback-loop control uses: the expert (or an
// automated controller) requests e.g. a parameter adjustment and the
// machine-side responder acknowledges.
func (b *Broker) Request(subject string, data []byte, timeout time.Duration) (Message, error) {
	inbox := nextInbox()
	sub, err := b.Subscribe(inbox, WithSubBuffer(1), WithOverflow(DropNewest))
	if err != nil {
		return Message{}, err
	}
	defer sub.Unsubscribe()
	if err := b.PublishRequest(subject, inbox, data); err != nil {
		return Message{}, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg, ok := <-sub.C:
		if !ok {
			return Message{}, ErrClosed
		}
		return msg, nil
	case <-timer.C:
		return Message{}, fmt.Errorf("%w (subject %q after %v)", ErrNoResponder, subject, timeout)
	}
}

// Respond answers a request message. It is a no-op error when the message
// carried no reply subject.
func (b *Broker) Respond(req Message, data []byte) error {
	if req.Reply == "" {
		return fmt.Errorf("pubsub: message on %q carries no reply subject", req.Subject)
	}
	return b.Publish(req.Reply, data)
}

// Request is the client-side counterpart of Broker.Request: it round-trips
// a request through the TCP server.
func (c *Conn) Request(subject string, data []byte, timeout time.Duration) (Message, error) {
	inbox := nextInbox()
	sub, err := c.Subscribe(inbox, WithSubBuffer(1))
	if err != nil {
		return Message{}, err
	}
	defer sub.Unsubscribe()
	// Make sure the server processed the SUB before the request fans out.
	if err := c.Ping(timeout); err != nil {
		return Message{}, err
	}
	if err := c.PublishRequest(subject, inbox, data); err != nil {
		return Message{}, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg, ok := <-sub.C:
		if !ok {
			return Message{}, ErrClosed
		}
		return msg, nil
	case <-timer.C:
		return Message{}, fmt.Errorf("%w (subject %q after %v)", ErrNoResponder, subject, timeout)
	}
}

// Respond answers a request received on a client subscription.
func (c *Conn) Respond(req Message, data []byte) error {
	if req.Reply == "" {
		return fmt.Errorf("pubsub: message on %q carries no reply subject", req.Subject)
	}
	return c.Publish(req.Reply, data)
}
