package pubsub

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestValidateSubject(t *testing.T) {
	good := []string{"a", "a.b", "strata.raw.ot.job42"}
	for _, s := range good {
		if err := ValidateSubject(s); err != nil {
			t.Errorf("ValidateSubject(%q) = %v, want nil", s, err)
		}
	}
	bad := []string{"", ".", "a.", ".a", "a..b", "a.*", ">", "a.>"}
	for _, s := range bad {
		if err := ValidateSubject(s); !errors.Is(err, ErrBadSubject) {
			t.Errorf("ValidateSubject(%q) = %v, want ErrBadSubject", s, err)
		}
	}
}

func TestValidatePattern(t *testing.T) {
	good := []string{"a", "a.*", "*.b", "a.>", ">", "*.*.c"}
	for _, p := range good {
		if err := ValidatePattern(p); err != nil {
			t.Errorf("ValidatePattern(%q) = %v, want nil", p, err)
		}
	}
	bad := []string{"", "a..b", ">.a", "a.>.b"}
	for _, p := range bad {
		if err := ValidatePattern(p); !errors.Is(err, ErrBadPattern) {
			t.Errorf("ValidatePattern(%q) = %v, want ErrBadPattern", p, err)
		}
	}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		pattern, subject string
		want             bool
	}{
		{"a.b", "a.b", true},
		{"a.b", "a.c", false},
		{"a.b", "a.b.c", false},
		{"a.*", "a.b", true},
		{"a.*", "a.b.c", false},
		{"*.b", "a.b", true},
		{"a.>", "a.b", true},
		{"a.>", "a.b.c.d", true},
		{"a.>", "a", false},
		{">", "a", true},
		{">", "a.b.c", true},
		{"*.*", "a.b", true},
		{"*.*", "a", false},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.subject); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.subject, got, c.want)
		}
	}
}

func recvOne(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("subscription channel closed unexpectedly")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	panic("unreachable")
}

func TestBrokerPublishSubscribe(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub, err := b.Subscribe("events.*")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("events.hot", []byte("x")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, sub.C)
	if m.Subject != "events.hot" || string(m.Data) != "x" || m.Seq != 1 {
		t.Fatalf("got %+v", m)
	}
	// Non-matching subject is not delivered.
	if err := b.Publish("other.hot", []byte("y")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.C:
		t.Fatalf("unexpected delivery %+v", m)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestBrokerFanOut(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var subs []*Subscription
	for i := 0; i < 5; i++ {
		s, err := b.Subscribe("x")
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if err := b.Publish("x", []byte("fan")); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		if m := recvOne(t, s.C); string(m.Data) != "fan" {
			t.Fatalf("sub %d got %q", i, m.Data)
		}
	}
	st := b.Stats()
	if st.Published != 1 || st.Delivered != 5 || st.Subscriptions != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBrokerQueueGroupLoadBalances(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	const members = 3
	var subs []*Subscription
	for i := 0; i < members; i++ {
		s, err := b.Subscribe("work", WithQueue("pool"))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := b.Publish("work", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]int, members)
	total := 0
	for i, s := range subs {
		for {
			select {
			case <-s.C:
				counts[i]++
				total++
				continue
			default:
			}
			break
		}
	}
	if total != n {
		t.Fatalf("total delivered = %d, want %d (each message to exactly one member)", total, n)
	}
	for i, c := range counts {
		if c != n/members {
			t.Errorf("member %d received %d, want %d (round robin)", i, c, n/members)
		}
	}
}

func TestBrokerQueueGroupAndPlainSubCoexist(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	plain, err := b.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	q1, err := b.Subscribe("t", WithQueue("g"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("t", []byte("m")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, plain.C)
	recvOne(t, q1.C)
}

func TestBrokerUnsubscribe(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub, err := b.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	sub.Unsubscribe()
	if err := b.Publish("x", []byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel should be closed after Unsubscribe")
	}
	sub.Unsubscribe() // idempotent
}

func TestBrokerDropOldest(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub, err := b.Subscribe("x", WithSubBuffer(2), WithOverflow(DropOldest))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Publish("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer keeps the 2 newest: 3, 4.
	if m := recvOne(t, sub.C); m.Data[0] != 3 {
		t.Fatalf("first = %d, want 3", m.Data[0])
	}
	if m := recvOne(t, sub.C); m.Data[0] != 4 {
		t.Fatalf("second = %d, want 4", m.Data[0])
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
}

func TestBrokerDropNewest(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub, err := b.Subscribe("x", WithSubBuffer(2), WithOverflow(DropNewest))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Publish("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer keeps the 2 oldest: 0, 1.
	if m := recvOne(t, sub.C); m.Data[0] != 0 {
		t.Fatalf("first = %d, want 0", m.Data[0])
	}
	if m := recvOne(t, sub.C); m.Data[0] != 1 {
		t.Fatalf("second = %d, want 1", m.Data[0])
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
}

func TestBrokerBlockBackpressure(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub, err := b.Subscribe("x", WithSubBuffer(1), WithOverflow(Block))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := b.Publish("x", []byte{byte(i)}); err != nil {
				t.Errorf("Publish error = %v", err)
				return
			}
		}
	}()
	// Drain slowly; all 10 messages must arrive in order.
	for i := 0; i < 10; i++ {
		m := recvOne(t, sub.C)
		if m.Data[0] != byte(i) {
			t.Fatalf("message %d = %d (blocking policy must not drop/reorder)", i, m.Data[0])
		}
	}
	<-done
}

func TestBrokerClosedOps(t *testing.T) {
	b := NewBroker()
	sub, err := b.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("subscription should be closed after broker Close")
	}
	if err := b.Publish("x", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close = %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe("y"); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after close = %v, want ErrClosed", err)
	}
	if err := b.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
}

func TestBrokerConcurrentPublishers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub, err := b.Subscribe("load.>", WithSubBuffer(10000))
	if err != nil {
		t.Fatal(err)
	}
	const publishers, each = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := b.Publish(fmt.Sprintf("load.p%d", p), []byte("m")); err != nil {
					t.Errorf("Publish error = %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	got := 0
	seqs := map[uint64]bool{}
	for {
		select {
		case m := <-sub.C:
			got++
			if seqs[m.Seq] {
				t.Fatalf("duplicate sequence %d", m.Seq)
			}
			seqs[m.Seq] = true
			continue
		default:
		}
		break
	}
	if got != publishers*each {
		t.Fatalf("received %d, want %d", got, publishers*each)
	}
}

// TestMatchPropertyExactSubjectsAlwaysMatchThemselves: any valid wildcard-free
// pattern matches exactly itself among generated subjects.
func TestMatchPropertySelfMatch(t *testing.T) {
	tokens := []string{"a", "b", "c", "dd"}
	gen := func(seed int64, depth uint8) string {
		n := int(depth%4) + 1
		s := ""
		x := seed
		for i := 0; i < n; i++ {
			if x < 0 {
				x = -x
			}
			s += tokens[x%int64(len(tokens))]
			if i != n-1 {
				s += "."
			}
			x = x/7 + 13
		}
		return s
	}
	prop := func(seed int64, depth uint8, seed2 int64, depth2 uint8) bool {
		s1 := gen(seed, depth)
		s2 := gen(seed2, depth2)
		if Match(s1, s1) != true {
			return false
		}
		// Without wildcards, match is just equality.
		return Match(s1, s2) == (s1 == s2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
