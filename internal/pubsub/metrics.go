package pubsub

import (
	"strconv"
	"strings"
	"sync"

	"strata/internal/telemetry"
)

// maxSubjectLabels bounds the cardinality of per-subject metrics: a broker
// relaying arbitrary application subjects must not grow an unbounded label
// set. Once the table is full, new subjects are accounted under the
// overflowSubject label; the unique per-request `_INBOX.*` reply subjects
// are collapsed upfront so they never exhaust the table.
const maxSubjectLabels = 64

const overflowSubject = "_other"

type subjectCount struct {
	published uint64
	delivered uint64
}

// subjectCounters is a bounded per-subject publish/deliver tally. One short
// mutexed update per publish — negligible next to the broker's own locking.
type subjectCounters struct {
	mu sync.Mutex
	m  map[string]*subjectCount
}

// collapseSubject folds high-cardinality machine-generated subjects into
// stable label values.
func collapseSubject(subject string) string {
	if subject == inboxPrefix || strings.HasPrefix(subject, inboxPrefix+".") {
		return inboxPrefix + ".*"
	}
	return subject
}

func (c *subjectCounters) record(subject string, delivered uint64) {
	key := collapseSubject(subject)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*subjectCount)
	}
	sc, ok := c.m[key]
	if !ok {
		if len(c.m) >= maxSubjectLabels {
			key = overflowSubject
			sc = c.m[key]
		}
		if sc == nil {
			sc = &subjectCount{}
			c.m[key] = sc
		}
	}
	sc.published++
	sc.delivered += delivered
}

func (c *subjectCounters) snapshot() map[string]subjectCount {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]subjectCount, len(c.m))
	for k, v := range c.m {
		out[k] = *v
	}
	return out
}

// Collect implements telemetry.Collector: broker totals, bounded per-subject
// publish/deliver counters, and per-subscription buffer depth and drops.
func (b *Broker) Collect(w *telemetry.Writer) {
	st := b.Stats()
	w.Counter("strata_pubsub_published_total",
		"Messages published to the broker.", float64(st.Published))
	w.Counter("strata_pubsub_delivered_total",
		"Message deliveries to subscriptions.", float64(st.Delivered))
	w.Counter("strata_pubsub_dropped_total",
		"Messages discarded by subscription overflow policies.",
		float64(b.droppedTotal.Load()))
	w.Gauge("strata_pubsub_subscriptions",
		"Live subscriptions.", float64(st.Subscriptions))
	w.Counter("strata_pubsub_over_quota_total",
		"Publishes rejected by subject admission quotas.", float64(st.OverQuota))
	w.Counter("strata_pubsub_slow_consumers_evicted_total",
		"Subscriptions force-closed by the slow-consumer timeout.",
		float64(st.Evicted))

	for subject, sc := range b.subjects.snapshot() {
		label := telemetry.L("subject", subject)
		w.Counter("strata_pubsub_subject_published_total",
			"Messages published, by subject.", float64(sc.published), label)
		w.Counter("strata_pubsub_subject_delivered_total",
			"Message deliveries, by subject.", float64(sc.delivered), label)
	}

	b.mu.RLock()
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.RUnlock()
	for _, s := range subs {
		labels := []telemetry.Label{
			telemetry.L("id", strconv.FormatUint(s.id, 10)),
			telemetry.L("pattern", s.pattern),
		}
		if s.queue != "" {
			labels = append(labels, telemetry.L("queue", s.queue))
		}
		w.Gauge("strata_pubsub_sub_pending",
			"Messages buffered in the subscription awaiting the consumer.",
			float64(len(s.ch)), labels...)
		w.Gauge("strata_pubsub_sub_capacity",
			"Subscription buffer capacity.", float64(cap(s.ch)), labels...)
		w.Counter("strata_pubsub_sub_dropped_total",
			"Messages this subscription discarded due to its overflow policy.",
			float64(s.Dropped()), labels...)
	}
}

// Collect implements telemetry.Collector: durability counters for a topic
// log store — how often appends asked for an fsync, how many fsyncs were
// actually issued, and how many rode a concurrent append's sync (group
// commit coalescing).
func (ls *LogStore) Collect(w *telemetry.Writer) {
	commits, syncs := ls.SyncStats()
	w.Counter("strata_pubsub_log_commits_total",
		"Appends that requested durability.", float64(commits))
	w.Counter("strata_pubsub_log_syncs_total",
		"fsyncs issued by the log store.", float64(syncs))
	saved := float64(0)
	if commits > syncs {
		saved = float64(commits - syncs)
	}
	w.Counter("strata_pubsub_log_syncs_saved_total",
		"fsyncs avoided by group-commit coalescing (commits minus syncs).",
		saved)

	ls.mu.Lock()
	topics := make([]*topicLog, 0, len(ls.topics))
	for _, t := range ls.topics {
		topics = append(topics, t)
	}
	ls.mu.Unlock()
	records := 0
	for _, t := range topics {
		t.mu.Lock()
		records += len(t.offsets)
		t.mu.Unlock()
	}
	w.Gauge("strata_pubsub_log_topics", "Topics in the log store.",
		float64(len(topics)))
	w.Gauge("strata_pubsub_log_records", "Records across all topics.",
		float64(records))
}

// Collect implements telemetry.Collector: TCP accept/active/reap counters
// for the wire-protocol server.
func (s *Server) Collect(w *telemetry.Writer) {
	s.mu.Lock()
	active := len(s.conns)
	s.mu.Unlock()
	w.Counter("strata_pubsub_server_accepted_total",
		"TCP client connections accepted.", float64(s.accepted.Load()))
	w.Counter("strata_pubsub_server_reaped_total",
		"Connections closed by the idle timeout.", float64(s.reaped.Load()))
	w.Gauge("strata_pubsub_server_connections",
		"Currently connected TCP clients.", float64(active))
	frames := s.wstats.frames.Load()
	flushes := s.wstats.flushes.Load()
	w.Counter("strata_pubsub_server_frames_written_total",
		"Outbound wire frames written across all connections.", float64(frames))
	w.Counter("strata_pubsub_server_writer_flushes_total",
		"Socket flushes issued by the corked writers.", float64(flushes))
	saved := float64(0)
	if frames > flushes {
		saved = float64(frames - flushes)
	}
	w.Counter("strata_pubsub_server_flushes_saved_total",
		"Flush syscalls avoided by write-side corking (frames minus flushes).",
		saved)
}

// Collect implements telemetry.Collector: link state and durability counters
// of a self-healing client connection.
func (rc *ReconnectConn) Collect(w *telemetry.Writer) {
	connected := 0.0
	if rc.IsConnected() {
		connected = 1
	}
	w.Gauge("strata_pubsub_client_connected",
		"1 while the client holds a live link to the server.", connected)
	w.Counter("strata_pubsub_client_reconnects_total",
		"Successful reconnects after a lost link.", float64(rc.Reconnects()))
	w.Gauge("strata_pubsub_client_pending",
		"Publishes buffered while disconnected.", float64(rc.Pending()))
	w.Counter("strata_pubsub_client_pending_dropped_total",
		"Buffered publishes discarded by the overflow policy.",
		float64(rc.PendingDropped()))
	if br := rc.breaker; br != nil {
		w.Gauge("strata_pubsub_client_breaker_state",
			"Circuit breaker position as a labelled flag (1 = current state).",
			1, telemetry.L("state", br.State().String()))
		w.Counter("strata_pubsub_client_breaker_opened_total",
			"Times the circuit breaker tripped open.", float64(br.opened.Load()))
		w.Counter("strata_pubsub_client_breaker_fast_fails_total",
			"Publishes rejected with ErrBreakerOpen while the breaker was open.",
			float64(br.fastFails.Load()))
	}
}
