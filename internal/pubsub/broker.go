package pubsub

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"strata/internal/telemetry"
)

// ErrOverQuota is returned by Publish when the subject is governed by a
// WithSubjectQuota rule and the slowest matching subscriber's buffer has
// already reached the quota: the broker refuses admission instead of letting
// the backlog grow (or blocking the publisher) any further. The message is
// NOT delivered to anyone — admission control is all-or-nothing per publish.
var ErrOverQuota = errors.New("pubsub: subject over quota")

// Message is one published datum. Data is shared between subscribers and
// must be treated as read-only by consumers.
type Message struct {
	Subject string
	Data    []byte
	// Reply, when non-empty, is the subject a responder should publish
	// its answer on (set by Request; see Broker.Respond).
	Reply string
	// Seq is the broker-assigned publish sequence number (1-based),
	// totally ordered across all subjects of one broker.
	Seq uint64
	// Traceparent, when non-empty, is the W3C trace context of the traced
	// tuple this message carries (telemetry.TraceContext.Traceparent). It
	// crosses the TCP wire in the opPubT/opMsgT frame header so a sampled
	// trace continues across processes; untraced messages leave it empty.
	Traceparent string
}

// OverflowPolicy selects what a full subscription buffer does with new
// messages.
type OverflowPolicy int

const (
	// Block makes Publish wait until the subscriber drains (back-pressure,
	// the default). This couples publisher progress to the slowest
	// blocking subscriber, like a bounded in-process queue.
	Block OverflowPolicy = iota + 1
	// DropOldest evicts the oldest buffered message to admit the new one.
	DropOldest
	// DropNewest discards the incoming message.
	DropNewest
)

// SubOption customizes a subscription.
type SubOption func(*subConfig)

type subConfig struct {
	buffer int
	policy OverflowPolicy
	queue  string
}

// WithSubBuffer sets the subscription's buffer capacity (default 256).
func WithSubBuffer(n int) SubOption {
	return func(c *subConfig) {
		if n > 0 {
			c.buffer = n
		}
	}
}

// WithOverflow sets the subscription's overflow policy (default Block).
func WithOverflow(p OverflowPolicy) SubOption {
	return func(c *subConfig) { c.policy = p }
}

// WithQueue places the subscription in the named queue group: each message
// matching the group's pattern is delivered to exactly one member,
// round-robin. This is how several workers share a topic's load.
func WithQueue(name string) SubOption {
	return func(c *subConfig) { c.queue = name }
}

// Subscription receives the messages matching its pattern. Read from C;
// call Unsubscribe to stop (C is then closed after in-flight deliveries).
type Subscription struct {
	C <-chan Message

	pattern string
	queue   string
	policy  OverflowPolicy
	ch      chan Message
	broker  *Broker
	id      uint64
	stall   time.Duration // broker's slow-consumer timeout at subscribe time

	mu     sync.Mutex
	closed bool

	dropped atomic.Uint64
}

// Pattern returns the subscription's pattern.
func (s *Subscription) Pattern() string { return s.pattern }

// Dropped returns how many messages this subscription discarded due to its
// overflow policy.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Unsubscribe detaches the subscription from the broker and closes C.
// Unsubscribing twice is a no-op.
func (s *Subscription) Unsubscribe() {
	s.broker.removeSub(s)
}

// deliver places msg in the subscription buffer according to the overflow
// policy. It returns false only for Block policy when the subscription
// closed while blocked.
func (s *Subscription) deliver(msg Message) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	switch s.policy {
	case DropOldest:
		for {
			select {
			case s.ch <- msg:
				return true
			default:
				select {
				case <-s.ch:
					s.dropped.Add(1)
					s.broker.droppedTotal.Add(1)
				default:
				}
			}
		}
	case DropNewest:
		select {
		case s.ch <- msg:
			return true
		default:
			s.dropped.Add(1)
			s.broker.droppedTotal.Add(1)
			return true
		}
	default: // Block
		// Hold the lock while blocked: Unsubscribe during a blocked
		// deliver would otherwise close the channel mid-send. The
		// trade-off is that Unsubscribe waits for the send; consumers
		// using Block are expected to drain. (Justified in DESIGN.md,
		// "Static contracts".)
		if s.stall > 0 {
			timer := time.NewTimer(s.stall)
			//lint:ignore locksend the lock is what makes close safe against this send
			select {
			case s.ch <- msg:
				timer.Stop()
				return true
			case <-timer.C:
				// Slow-consumer eviction: this subscriber stalled the
				// publisher for the full timeout, so it forfeits the
				// subscription. Close under s.mu (the lock we hold) and
				// detach from the broker asynchronously — removeSub takes
				// b.mu then s.mu, so calling it inline here would deadlock
				// against a concurrent Publish holding b.mu.
				s.closed = true
				close(s.ch)
				s.broker.evicted.Add(1)
				go s.broker.removeSub(s)
				if fn := s.broker.onSlow; fn != nil {
					go fn(s.pattern)
				}
				return false
			}
		}
		//lint:ignore locksend the lock is what makes close safe against this send
		s.ch <- msg
		return true
	}
}

// Stats summarizes a broker's activity.
type Stats struct {
	Published     uint64
	Delivered     uint64
	Subscriptions int
	// OverQuota counts publishes rejected by subject quotas; Evicted counts
	// subscriptions force-closed by the slow-consumer timeout.
	OverQuota uint64
	Evicted   uint64
}

// Broker routes published messages to matching subscriptions. The zero
// value is not usable; create one with NewBroker. Safe for concurrent use.
type Broker struct {
	mu     sync.RWMutex
	closed bool
	subs   map[uint64]*Subscription
	queues map[string]*queueGroup // key: queue name + "\x00" + pattern
	nextID uint64
	seq    atomic.Uint64

	published    atomic.Uint64
	delivered    atomic.Uint64
	droppedTotal atomic.Uint64
	subjects     subjectCounters

	// Overload protection, fixed at construction (no locking needed).
	quotas []subjectQuota       // admission control: see WithSubjectQuota
	stall  time.Duration        // slow-consumer timeout: see WithSlowConsumerTimeout
	onSlow func(pattern string) // eviction callback: see WithSlowConsumerHandler

	// traceBuf, when set, collects a delivery span fragment per traced
	// message: see WithTraceFragments.
	traceBuf *telemetry.TraceBuffer

	overQuota atomic.Uint64 // publishes rejected with ErrOverQuota
	evicted   atomic.Uint64 // subscriptions killed by the slow-consumer timeout
}

// subjectQuota caps the backlog a subject's slowest subscriber may carry.
type subjectQuota struct {
	pattern string
	max     int
}

// BrokerOption customizes a broker at construction.
type BrokerOption func(*Broker)

// WithSubjectQuota installs admission control for subjects matching pattern:
// a publish is rejected with ErrOverQuota when the deepest buffer among the
// subject's matching subscribers already holds max messages. This bounds how
// far a slow consumer can drag a Block-policy publisher (and how much memory
// Drop-policy buffers pin) before publishers are told to back off at the
// door instead. When several quotas match one subject, the smallest max
// wins. Invalid patterns (see ValidatePattern) and max < 1 are ignored.
func WithSubjectQuota(pattern string, max int) BrokerOption {
	return func(b *Broker) {
		if max < 1 || ValidatePattern(pattern) != nil {
			return
		}
		b.quotas = append(b.quotas, subjectQuota{pattern: pattern, max: max})
	}
}

// WithSlowConsumerTimeout arms slow-consumer eviction: a Block-policy
// subscriber that stalls a delivery for longer than d is force-closed (its
// channel is closed, the subscription removed) so one wedged consumer cannot
// hold every publisher hostage forever. Durable consumers that must not lose
// data should read from a LogStore Cursor instead — cursors never stall the
// broker and can measure and skip their own backlog (Cursor.Lag,
// Cursor.SkipToLatest).
func WithSlowConsumerTimeout(d time.Duration) BrokerOption {
	return func(b *Broker) {
		if d > 0 {
			b.stall = d
		}
	}
}

// WithSlowConsumerHandler registers a callback invoked (on its own
// goroutine) with the subscription's pattern each time the slow-consumer
// timeout evicts a subscriber.
func WithSlowConsumerHandler(fn func(pattern string)) BrokerOption {
	return func(b *Broker) { b.onSlow = fn }
}

// WithTraceFragments makes the broker record a span fragment in buf for
// every traced message it delivers (one "deliver" span under the message's
// trace ID). With the buffer wired to a /debug/trace endpoint, the broker
// process shows up in merged cross-process timelines between the publisher
// and its subscribers.
func WithTraceFragments(buf *telemetry.TraceBuffer) BrokerOption {
	return func(b *Broker) { b.traceBuf = buf }
}

// queueGroup tracks the members of one (queue, pattern) pair and the
// round-robin cursor.
type queueGroup struct {
	members []*Subscription
	next    int
}

// NewBroker creates an empty broker.
func NewBroker(opts ...BrokerOption) *Broker {
	b := &Broker{
		subs:   make(map[uint64]*Subscription),
		queues: make(map[string]*queueGroup),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Subscribe registers interest in pattern and returns the subscription.
func (b *Broker) Subscribe(pattern string, opts ...SubOption) (*Subscription, error) {
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	cfg := subConfig{buffer: 256, policy: Block}
	for _, o := range opts {
		o(&cfg)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextID++
	ch := make(chan Message, cfg.buffer)
	sub := &Subscription{
		C:       ch,
		ch:      ch,
		pattern: pattern,
		queue:   cfg.queue,
		policy:  cfg.policy,
		broker:  b,
		id:      b.nextID,
		stall:   b.stall,
	}
	b.subs[sub.id] = sub
	if cfg.queue != "" {
		key := queueKey(cfg.queue, pattern)
		g, ok := b.queues[key]
		if !ok {
			g = &queueGroup{}
			b.queues[key] = g
		}
		g.members = append(g.members, sub)
	}
	return sub, nil
}

func queueKey(queue, pattern string) string { return queue + "\x00" + pattern }

func (b *Broker) removeSub(s *Subscription) {
	b.mu.Lock()
	if _, ok := b.subs[s.id]; !ok {
		b.mu.Unlock()
		return
	}
	delete(b.subs, s.id)
	if s.queue != "" {
		key := queueKey(s.queue, s.pattern)
		if g, ok := b.queues[key]; ok {
			for i, m := range g.members {
				if m == s {
					g.members = append(g.members[:i], g.members[i+1:]...)
					break
				}
			}
			if len(g.members) == 0 {
				delete(b.queues, key)
			}
		}
	}
	b.mu.Unlock()

	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
}

// Publish delivers data to every subscription whose pattern matches subject
// (and to one member per matching queue group). Data is not copied; treat it
// as immutable after publishing.
func (b *Broker) Publish(subject string, data []byte) error {
	return b.PublishRequest(subject, "", data)
}

// PublishRequest is Publish with a reply subject attached to the delivered
// messages (the request half of request/reply).
func (b *Broker) PublishRequest(subject, reply string, data []byte) error {
	return b.PublishMsg(Message{Subject: subject, Reply: reply, Data: data})
}

// PublishMsg publishes m (Subject, Data, Reply, and optionally Traceparent;
// Seq is assigned by the broker). It is the full-control publish used by
// trace-propagating connectors; Publish and PublishRequest delegate here.
func (b *Broker) PublishMsg(m Message) error {
	subject := m.Subject
	if err := ValidateSubject(subject); err != nil {
		return err
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrClosed
	}
	// Admission control: when a quota governs this subject, measure the
	// deepest backlog across every matching subscriber (plain and queue
	// members alike) and refuse the publish outright if it has hit the
	// quota. Checked before the queue-group cursor advances so a rejected
	// publish perturbs nothing.
	if max, limited := b.quotaFor(subject); limited {
		depth := 0
		for _, s := range b.subs {
			if Match(s.pattern, subject) {
				if n := len(s.ch); n > depth {
					depth = n
				}
			}
		}
		if depth >= max {
			b.mu.RUnlock()
			b.overQuota.Add(1)
			return ErrOverQuota
		}
	}
	// Collect targets under the read lock, deliver after releasing it
	// (Block-policy deliveries may park for a while).
	var targets []*Subscription
	for _, s := range b.subs {
		if s.queue == "" && Match(s.pattern, subject) {
			targets = append(targets, s)
		}
	}
	b.mu.RUnlock()

	// Queue groups need the write lock briefly for the round-robin cursor.
	b.mu.Lock()
	for _, g := range b.queues {
		if len(g.members) == 0 || !Match(g.members[0].pattern, subject) {
			continue
		}
		g.next = (g.next + 1) % len(g.members)
		targets = append(targets, g.members[g.next])
	}
	b.mu.Unlock()

	msg := m
	msg.Seq = b.seq.Add(1)
	b.published.Add(1)
	deliverStart := time.Now()
	var delivered uint64
	for _, s := range targets {
		if s.deliver(msg) {
			delivered++
		}
	}
	b.delivered.Add(delivered)
	b.subjects.record(subject, delivered)
	// A traced message leaves a span fragment in the broker's buffer: the
	// broker hop becomes visible when fragments are merged by trace ID.
	if b.traceBuf != nil && msg.Traceparent != "" {
		if tc, err := telemetry.ParseTraceparent(msg.Traceparent); err == nil {
			fr := telemetry.ContinueTrace(tc, "broker/"+subject)
			fr.Record("deliver", time.Since(deliverStart))
			fr.Finish()
			b.traceBuf.Add(fr)
		}
	}
	return nil
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	n := len(b.subs)
	b.mu.RUnlock()
	return Stats{
		Published:     b.published.Load(),
		Delivered:     b.delivered.Load(),
		Subscriptions: n,
		OverQuota:     b.overQuota.Load(),
		Evicted:       b.evicted.Load(),
	}
}

// quotaFor returns the effective quota for subject: the smallest max among
// the matching WithSubjectQuota rules, or limited=false when none match.
func (b *Broker) quotaFor(subject string) (max int, limited bool) {
	for _, q := range b.quotas {
		if Match(q.pattern, subject) && (!limited || q.max < max) {
			max, limited = q.max, true
		}
	}
	return max, limited
}

// Close unsubscribes everything and marks the broker closed.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[uint64]*Subscription)
	b.queues = make(map[string]*queueGroup)
	b.mu.Unlock()

	for _, s := range subs {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
		s.mu.Unlock()
	}
	return nil
}
