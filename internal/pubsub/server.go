package pubsub

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"strata/internal/obslog"
)

// Server exposes a Broker over TCP using the wire protocol in wire.go.
// Remote clients (see Dial) publish into and subscribe from the same broker
// as in-process users, so a pipeline can span machines — the role Kafka
// plays in the paper's prototype.
type Server struct {
	broker        *Broker
	ln            net.Listener
	logf          func(format string, args ...any)
	idleTimeout   time.Duration
	flushInterval time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	accepted atomic.Uint64
	reaped   atomic.Uint64
	wstats   flushStats // frame/flush counts aggregated across all connections
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithServerLogf sets the server's diagnostic logger (default: the structured
// obslog "pubsub" logger at Warn level; pass a no-op to silence).
func WithServerLogf(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) {
		if logf != nil {
			s.logf = logf
		}
	}
}

// WithIdleTimeout makes the server reap connections that send no frame
// (including pings) for d. Paired with client heartbeats it bounds how long
// a dead peer can pin server-side subscriptions and forwarding goroutines;
// set it to a few multiples of the clients' heartbeat interval. 0 (the
// default) disables reaping.
//
// Idleness is judged by inbound frames only: outbound message fan-out does
// not count. Every client must therefore send something within d — a
// DialReconnect client's heartbeat (default every 30s) qualifies, but a
// plain Dial client that only subscribes sends nothing after the SUB frame
// and WILL be reaped as healthy-but-silent. Enable this only when all
// clients use DialReconnect (or ping on their own schedule).
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.idleTimeout = d
		}
	}
}

// WithFlushInterval sets the write-side cork on every client connection:
// outbound message frames are buffered and the socket flushed at most once
// per d under load (idle connections flush immediately), so a fan-out burst
// costs one syscall per interval instead of one per message. Latency-critical
// control frames (pong, error) always flush inline. d = 0 disables corking —
// every frame flushes on write, the pre-cork behavior. Default 100µs.
func WithFlushInterval(d time.Duration) ServerOption {
	return func(s *Server) {
		if d >= 0 {
			s.flushInterval = d
		}
	}
}

// Serve starts a TCP listener on addr ("host:port"; ":0" picks a free port)
// bridging remote clients to broker. Close the returned server to stop.
func Serve(broker *Broker, addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: listen: %w", err)
	}
	s := &Server{
		broker: broker,
		ln:     ln,
		logf: func(format string, args ...any) {
			obslog.L("pubsub").Warn(fmt.Sprintf(format, args...))
		},
		conns:         make(map[net.Conn]struct{}),
		flushInterval: defaultFlushInterval,
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and disconnects every client.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close() // disconnecting clients; their close errors are noise
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing shutdown: drop the straggler
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one client: a read loop decoding frames, plus one
// forwarding goroutine per subscription pumping broker messages back out.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close() // serve loop exit: the link is already finished
	}()

	// Outbound writes are corked: message fan-out buffers frames and the
	// flusher coalesces them into one socket flush per interval, while pong
	// and error frames flush inline. cw.close runs after the forwarding
	// goroutines drain (defer order) so their last frames still flush.
	cw := newCorkedWriter(bufio.NewWriterSize(conn, 1<<16), s.flushInterval, &s.wstats)
	defer cw.close()

	var (
		subsMu sync.Mutex
		subs   = make(map[uint64]*Subscription)
		fwdWG  sync.WaitGroup
	)
	defer func() {
		subsMu.Lock()
		for _, sub := range subs {
			sub.Unsubscribe()
		}
		subs = nil
		subsMu.Unlock()
		fwdWG.Wait()
	}()

	sendErr := func(err error) {
		if e := cw.writeNow(opErr, []byte(err.Error())); e != nil {
			s.logf("pubsub server: send error frame: %v", e)
		}
	}

	r := bufio.NewReaderSize(conn, 1<<16)
	for {
		if s.idleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		op, payload, err := readFrame(r)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.reaped.Add(1)
				s.logf("pubsub server: reaping idle connection %v (no frame in %v)", conn.RemoteAddr(), s.idleTimeout)
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("pubsub server: read: %v", err)
			}
			return
		}
		switch op {
		case opPub, opPubT:
			c := cursor{b: payload}
			var tp []byte
			if op == opPubT {
				tlen, err := c.u16()
				if err != nil {
					sendErr(err)
					return
				}
				if tp, err = c.bytes(tlen); err != nil {
					sendErr(err)
					return
				}
			}
			slen, err := c.u16()
			if err != nil {
				sendErr(err)
				return
			}
			subj, err := c.bytes(slen)
			if err != nil {
				sendErr(err)
				return
			}
			rlen, err := c.u16()
			if err != nil {
				sendErr(err)
				return
			}
			reply, err := c.bytes(rlen)
			if err != nil {
				sendErr(err)
				return
			}
			// Copy the data: the broker shares it with N subscribers
			// beyond this frame's lifetime.
			data := append([]byte(nil), c.rest()...)
			m := Message{Subject: string(subj), Reply: string(reply), Data: data, Traceparent: string(tp)}
			if err := s.broker.PublishMsg(m); err != nil {
				sendErr(err)
			}
		case opSub:
			c := cursor{b: payload}
			sid, err := c.u64()
			if err != nil {
				sendErr(err)
				return
			}
			plen, err := c.u16()
			if err != nil {
				sendErr(err)
				return
			}
			pat, err := c.bytes(plen)
			if err != nil {
				sendErr(err)
				return
			}
			qlen, err := c.u16()
			if err != nil {
				sendErr(err)
				return
			}
			queue, err := c.bytes(qlen)
			if err != nil {
				sendErr(err)
				return
			}
			opts := []SubOption{}
			if len(queue) > 0 {
				opts = append(opts, WithQueue(string(queue)))
			}
			sub, err := s.broker.Subscribe(string(pat), opts...)
			if err != nil {
				sendErr(err)
				continue
			}
			subsMu.Lock()
			if subs == nil { // connection tearing down
				subsMu.Unlock()
				sub.Unsubscribe()
				return
			}
			subs[sid] = sub
			subsMu.Unlock()
			fwdWG.Add(1)
			go func(sid uint64, sub *Subscription) {
				defer fwdWG.Done()
				for msg := range sub.C {
					// Traced messages ride opMsgT so the subscriber's
					// process can continue the span. Both variants go
					// through the zero-allocation frame path.
					fop := opMsg
					if msg.Traceparent != "" {
						fop = opMsgT
					}
					if err := cw.writeMsg(fop, sid, msg.Seq, msg.Traceparent, msg.Subject, msg.Reply, msg.Data); err != nil {
						sub.Unsubscribe()
						return
					}
				}
			}(sid, sub)
		case opUnsub:
			c := cursor{b: payload}
			sid, err := c.u64()
			if err != nil {
				sendErr(err)
				return
			}
			subsMu.Lock()
			sub := subs[sid]
			delete(subs, sid)
			subsMu.Unlock()
			if sub != nil {
				sub.Unsubscribe()
			}
		case opPing:
			// Pong flushes inline: Ping doubles as a round-trip barrier, so
			// any corked message frames written earlier go with it.
			if err := cw.writeNow(opPong); err != nil {
				return
			}
		default:
			sendErr(fmt.Errorf("pubsub: unknown op %d", op))
			return
		}
	}
}
