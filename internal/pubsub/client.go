package pubsub

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conn is a client connection to a pubsub Server. Safe for concurrent use.
type Conn struct {
	conn net.Conn

	cw     *corkedWriter
	wstats flushStats

	mu      sync.Mutex
	closed  bool
	subs    map[uint64]*ClientSub
	nextSID uint64
	pongCh  chan struct{}
	readErr error
	done    chan struct{}
}

// ClientSub is a client-side subscription. Read messages from C; C closes
// when the subscription or connection ends.
type ClientSub struct {
	C <-chan Message

	ch   chan Message
	conn *Conn
	sid  uint64

	// Shutdown protocol: quit unblocks an in-flight delivery, then dead is
	// set and ch closed under sendMu so the dispatcher can never send on a
	// closed channel.
	quit   chan struct{}
	sendMu sync.Mutex
	dead   bool
	once   sync.Once
}

// shutdown closes the subscription's channels exactly once, aborting any
// delivery blocked on a full buffer first.
func (s *ClientSub) shutdown() {
	s.once.Do(func() {
		close(s.quit)
		s.sendMu.Lock()
		s.dead = true
		close(s.ch)
		s.sendMu.Unlock()
	})
}

// deliver hands msg to the consumer, giving up if the subscription shuts
// down while the buffer is full.
func (s *ClientSub) deliver(msg Message) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.dead {
		return
	}
	// Holding sendMu across the send is what makes shutdown's close(s.ch)
	// safe; the quit case (closed before shutdown takes sendMu) bounds the
	// wait. (Justified in DESIGN.md, "Static contracts".)
	//lint:ignore locksend the lock serializes this send against close; quit bounds it
	select {
	case s.ch <- msg:
	case <-s.quit:
	}
}

// Unsubscribe stops the subscription. Safe to call twice.
func (s *ClientSub) Unsubscribe() error {
	s.conn.mu.Lock()
	_, active := s.conn.subs[s.sid]
	delete(s.conn.subs, s.sid)
	connClosed := s.conn.closed
	s.conn.mu.Unlock()
	s.shutdown()
	if !active || connClosed {
		return nil
	}
	return s.conn.send(opUnsub, u64(s.sid))
}

// dialConfig holds the tuning knobs of a client connection.
type dialConfig struct {
	flushInterval time.Duration
}

// DialOption customizes Dial.
type DialOption func(*dialConfig)

// WithDialFlushInterval sets the write-side cork: publish frames are buffered
// and the socket flushed at most once per d under sustained load (an idle
// connection still flushes immediately), so a publish burst costs one syscall
// per interval instead of one per message. Control frames (subscribe,
// unsubscribe, ping) always flush inline, as does Close. d = 0 disables
// corking — every frame flushes on write. Default 100µs.
func WithDialFlushInterval(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d >= 0 {
			c.flushInterval = d
		}
	}
}

// Dial connects to a pubsub server at addr.
func Dial(addr string, opts ...DialOption) (*Conn, error) {
	cfg := dialConfig{flushInterval: defaultFlushInterval}
	for _, o := range opts {
		o(&cfg)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: dial: %w", err)
	}
	c := &Conn{
		conn:   nc,
		subs:   make(map[uint64]*ClientSub),
		pongCh: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	c.cw = newCorkedWriter(bufio.NewWriterSize(nc, 1<<16), cfg.flushInterval, &c.wstats)
	go c.readLoop()
	return c, nil
}

// send writes a control frame and flushes it before returning.
func (c *Conn) send(op byte, payload ...[]byte) error {
	return c.sendWith(c.cw.writeNow, op, payload...)
}

// sendCorked writes a data frame into the cork; the background flusher (or
// the next control frame) pushes it to the socket.
func (c *Conn) sendCorked(op byte, payload ...[]byte) error {
	return c.sendWith(c.cw.writeCorked, op, payload...)
}

func (c *Conn) sendWith(write func(byte, ...[]byte) error, op byte, payload ...[]byte) error {
	// Check closed under c.mu before touching the writer: teardown closes
	// the underlying conn, and racing a write against that close would
	// surface as a confusing network error instead of ErrClosed.
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := write(op, payload...); err != nil {
		// The conn may have been torn down mid-write; normalize that to
		// ErrClosed so callers see one error for "connection gone".
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return err
	}
	return nil
}

// flush pushes any corked publish frames to the socket immediately.
func (c *Conn) flush() error {
	return c.cw.flush()
}

// FlushesSaved reports how many socket flushes the write-side cork avoided so
// far, relative to the flush-per-frame wire format: frames written minus
// flushes issued.
func (c *Conn) FlushesSaved() uint64 {
	frames := c.wstats.frames.Load()
	flushes := c.wstats.flushes.Load()
	if flushes > frames {
		return 0
	}
	return frames - flushes
}

// Publish sends data under subject. The data slice is written out before
// Publish returns and may be reused by the caller afterwards.
func (c *Conn) Publish(subject string, data []byte) error {
	return c.PublishRequest(subject, "", data)
}

// PublishRequest is Publish with a reply subject attached (the request half
// of request/reply).
func (c *Conn) PublishRequest(subject, reply string, data []byte) error {
	return c.PublishMsg(Message{Subject: subject, Reply: reply, Data: data})
}

// PublishMsg publishes m.Data under m.Subject with m.Reply attached. When
// m.Traceparent is set the frame goes out as opPubT, carrying the trace
// context to the server; otherwise this is exactly PublishRequest.
func (c *Conn) PublishMsg(m Message) error {
	if err := ValidateSubject(m.Subject); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	op := opPub
	if m.Traceparent != "" {
		op = opPubT
	}
	// The zero-allocation frame path: headers are assembled in the writer's
	// scratch, m.Data goes to the socket buffer directly and is never
	// retained, so callers may reuse it after PublishMsg returns.
	if err := c.cw.writeMsg(op, 0, 0, m.Traceparent, m.Subject, m.Reply, m.Data); err != nil {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return err
	}
	return nil
}

// Subscribe registers a subscription on the server. Only WithSubBuffer and
// WithQueue options apply client-side (overflow is governed by TCP
// back-pressure: if the client does not drain, the server's forwarding
// goroutine blocks on the socket).
func (c *Conn) Subscribe(pattern string, opts ...SubOption) (*ClientSub, error) {
	return c.subscribe(pattern, true, opts...)
}

// subscribe registers a subscription, either flushing the SUB frame inline
// (flushNow, the Subscribe behavior) or leaving it corked so a caller
// restoring many subscriptions can batch them and flush once.
func (c *Conn) subscribe(pattern string, flushNow bool, opts ...SubOption) (*ClientSub, error) {
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	cfg := subConfig{buffer: 256}
	for _, o := range opts {
		o(&cfg)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextSID++
	sid := c.nextSID
	ch := make(chan Message, cfg.buffer)
	sub := &ClientSub{C: ch, ch: ch, conn: c, sid: sid, quit: make(chan struct{})}
	c.subs[sid] = sub
	c.mu.Unlock()

	write := c.send
	if !flushNow {
		write = c.sendCorked
	}
	err := write(opSub,
		u64(sid),
		u16(len(pattern)), []byte(pattern),
		u16(len(cfg.queue)), []byte(cfg.queue))
	if err != nil {
		c.mu.Lock()
		delete(c.subs, sid)
		c.mu.Unlock()
		return nil, err
	}
	return sub, nil
}

// Ping round-trips a ping frame, confirming the connection and that all
// previously sent frames were consumed by the server's read loop.
func (c *Conn) Ping(timeout time.Duration) error {
	if err := c.send(opPing); err != nil {
		return err
	}
	select {
	case <-c.pongCh:
		return nil
	case <-c.done:
		return c.err()
	case <-time.After(timeout):
		return fmt.Errorf("pubsub: ping timeout after %v", timeout)
	}
}

func (c *Conn) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return ErrClosed
}

// Close tears down the connection and every subscription.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	subs := make([]*ClientSub, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = make(map[uint64]*ClientSub)
	c.mu.Unlock()
	for _, s := range subs {
		s.shutdown()
	}
	// Flush corked publishes before closing the socket so nothing written
	// before Close is lost; stops the flusher goroutine too.
	_ = c.cw.close()
	err := c.conn.Close()
	<-c.done // wait for readLoop exit
	return err
}

// readLoop dispatches inbound frames until the connection drops.
func (c *Conn) readLoop() {
	defer close(c.done)
	r := bufio.NewReaderSize(c.conn, 1<<16)
	for {
		op, payload, err := readFrame(r)
		if err != nil {
			c.teardown(err)
			return
		}
		switch op {
		case opMsg, opMsgT:
			cur := cursor{b: payload}
			sid, err := cur.u64()
			if err != nil {
				c.teardown(err)
				return
			}
			seq, err := cur.u64()
			if err != nil {
				c.teardown(err)
				return
			}
			var tp []byte
			if op == opMsgT {
				tlen, err := cur.u16()
				if err != nil {
					c.teardown(err)
					return
				}
				if tp, err = cur.bytes(tlen); err != nil {
					c.teardown(err)
					return
				}
			}
			slen, err := cur.u16()
			if err != nil {
				c.teardown(err)
				return
			}
			subj, err := cur.bytes(slen)
			if err != nil {
				c.teardown(err)
				return
			}
			rlen, err := cur.u16()
			if err != nil {
				c.teardown(err)
				return
			}
			reply, err := cur.bytes(rlen)
			if err != nil {
				c.teardown(err)
				return
			}
			data := append([]byte(nil), cur.rest()...)
			c.mu.Lock()
			sub := c.subs[sid]
			c.mu.Unlock()
			if sub != nil {
				// Blocking send: back-pressure propagates to the
				// server through the unread socket.
				sub.deliver(Message{Subject: string(subj), Reply: string(reply), Data: data, Seq: seq, Traceparent: string(tp)})
			}
		case opPong:
			select {
			case c.pongCh <- struct{}{}:
			default:
			}
		case opErr:
			c.teardown(fmt.Errorf("pubsub: server error: %s", payload))
			return
		default:
			c.teardown(fmt.Errorf("pubsub: unknown op %d from server", op))
			return
		}
	}
}

// teardown records the first read error and closes all subscription
// channels so consumers unblock.
func (c *Conn) teardown(err error) {
	c.mu.Lock()
	if c.readErr == nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		c.readErr = err
	}
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	subs := make([]*ClientSub, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = make(map[uint64]*ClientSub)
	c.mu.Unlock()
	for _, s := range subs {
		s.shutdown()
	}
	// The link is already failed or closing; its close error is noise. Close
	// the socket before stopping the corked writer: the flusher may be
	// blocked mid-flush on a dead peer, and the close unblocks it.
	_ = c.conn.Close()
	_ = c.cw.close()
}
