package pubsub

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conn is a client connection to a pubsub Server. Safe for concurrent use.
type Conn struct {
	conn net.Conn

	writeMu sync.Mutex
	w       *bufio.Writer

	mu      sync.Mutex
	closed  bool
	subs    map[uint64]*ClientSub
	nextSID uint64
	pongCh  chan struct{}
	readErr error
	done    chan struct{}
}

// ClientSub is a client-side subscription. Read messages from C; C closes
// when the subscription or connection ends.
type ClientSub struct {
	C <-chan Message

	ch   chan Message
	conn *Conn
	sid  uint64

	// Shutdown protocol: quit unblocks an in-flight delivery, then dead is
	// set and ch closed under sendMu so the dispatcher can never send on a
	// closed channel.
	quit   chan struct{}
	sendMu sync.Mutex
	dead   bool
	once   sync.Once
}

// shutdown closes the subscription's channels exactly once, aborting any
// delivery blocked on a full buffer first.
func (s *ClientSub) shutdown() {
	s.once.Do(func() {
		close(s.quit)
		s.sendMu.Lock()
		s.dead = true
		close(s.ch)
		s.sendMu.Unlock()
	})
}

// deliver hands msg to the consumer, giving up if the subscription shuts
// down while the buffer is full.
func (s *ClientSub) deliver(msg Message) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.dead {
		return
	}
	// Holding sendMu across the send is what makes shutdown's close(s.ch)
	// safe; the quit case (closed before shutdown takes sendMu) bounds the
	// wait. (Justified in DESIGN.md, "Static contracts".)
	//lint:ignore locksend the lock serializes this send against close; quit bounds it
	select {
	case s.ch <- msg:
	case <-s.quit:
	}
}

// Unsubscribe stops the subscription. Safe to call twice.
func (s *ClientSub) Unsubscribe() error {
	s.conn.mu.Lock()
	_, active := s.conn.subs[s.sid]
	delete(s.conn.subs, s.sid)
	connClosed := s.conn.closed
	s.conn.mu.Unlock()
	s.shutdown()
	if !active || connClosed {
		return nil
	}
	return s.conn.send(opUnsub, u64(s.sid))
}

// Dial connects to a pubsub server at addr.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: dial: %w", err)
	}
	c := &Conn{
		conn:   nc,
		w:      bufio.NewWriterSize(nc, 1<<16),
		subs:   make(map[uint64]*ClientSub),
		pongCh: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Conn) send(op byte, payload ...[]byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	// Check closed under c.mu before touching the writer: teardown closes
	// the underlying conn, and racing a write against that close would
	// surface as a confusing network error instead of ErrClosed.
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := writeFrame(c.w, op, payload...); err != nil {
		// The conn may have been torn down mid-write; normalize that to
		// ErrClosed so callers see one error for "connection gone".
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return err
	}
	return nil
}

// Publish sends data under subject. The data slice is written out before
// Publish returns and may be reused by the caller afterwards.
func (c *Conn) Publish(subject string, data []byte) error {
	return c.PublishRequest(subject, "", data)
}

// PublishRequest is Publish with a reply subject attached (the request half
// of request/reply).
func (c *Conn) PublishRequest(subject, reply string, data []byte) error {
	if err := ValidateSubject(subject); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	return c.send(opPub,
		u16(len(subject)), []byte(subject),
		u16(len(reply)), []byte(reply),
		data)
}

// Subscribe registers a subscription on the server. Only WithSubBuffer and
// WithQueue options apply client-side (overflow is governed by TCP
// back-pressure: if the client does not drain, the server's forwarding
// goroutine blocks on the socket).
func (c *Conn) Subscribe(pattern string, opts ...SubOption) (*ClientSub, error) {
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	cfg := subConfig{buffer: 256}
	for _, o := range opts {
		o(&cfg)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextSID++
	sid := c.nextSID
	ch := make(chan Message, cfg.buffer)
	sub := &ClientSub{C: ch, ch: ch, conn: c, sid: sid, quit: make(chan struct{})}
	c.subs[sid] = sub
	c.mu.Unlock()

	err := c.send(opSub,
		u64(sid),
		u16(len(pattern)), []byte(pattern),
		u16(len(cfg.queue)), []byte(cfg.queue))
	if err != nil {
		c.mu.Lock()
		delete(c.subs, sid)
		c.mu.Unlock()
		return nil, err
	}
	return sub, nil
}

// Ping round-trips a ping frame, confirming the connection and that all
// previously sent frames were consumed by the server's read loop.
func (c *Conn) Ping(timeout time.Duration) error {
	if err := c.send(opPing); err != nil {
		return err
	}
	select {
	case <-c.pongCh:
		return nil
	case <-c.done:
		return c.err()
	case <-time.After(timeout):
		return fmt.Errorf("pubsub: ping timeout after %v", timeout)
	}
}

func (c *Conn) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return ErrClosed
}

// Close tears down the connection and every subscription.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	subs := make([]*ClientSub, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = make(map[uint64]*ClientSub)
	c.mu.Unlock()
	for _, s := range subs {
		s.shutdown()
	}
	err := c.conn.Close()
	<-c.done // wait for readLoop exit
	return err
}

// readLoop dispatches inbound frames until the connection drops.
func (c *Conn) readLoop() {
	defer close(c.done)
	r := bufio.NewReaderSize(c.conn, 1<<16)
	for {
		op, payload, err := readFrame(r)
		if err != nil {
			c.teardown(err)
			return
		}
		switch op {
		case opMsg:
			cur := cursor{b: payload}
			sid, err := cur.u64()
			if err != nil {
				c.teardown(err)
				return
			}
			seq, err := cur.u64()
			if err != nil {
				c.teardown(err)
				return
			}
			slen, err := cur.u16()
			if err != nil {
				c.teardown(err)
				return
			}
			subj, err := cur.bytes(slen)
			if err != nil {
				c.teardown(err)
				return
			}
			rlen, err := cur.u16()
			if err != nil {
				c.teardown(err)
				return
			}
			reply, err := cur.bytes(rlen)
			if err != nil {
				c.teardown(err)
				return
			}
			data := append([]byte(nil), cur.rest()...)
			c.mu.Lock()
			sub := c.subs[sid]
			c.mu.Unlock()
			if sub != nil {
				// Blocking send: back-pressure propagates to the
				// server through the unread socket.
				sub.deliver(Message{Subject: string(subj), Reply: string(reply), Data: data, Seq: seq})
			}
		case opPong:
			select {
			case c.pongCh <- struct{}{}:
			default:
			}
		case opErr:
			c.teardown(fmt.Errorf("pubsub: server error: %s", payload))
			return
		default:
			c.teardown(fmt.Errorf("pubsub: unknown op %d from server", op))
			return
		}
	}
}

// teardown records the first read error and closes all subscription
// channels so consumers unblock.
func (c *Conn) teardown(err error) {
	c.mu.Lock()
	if c.readErr == nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		c.readErr = err
	}
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	subs := make([]*ClientSub, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = make(map[uint64]*ClientSub)
	c.mu.Unlock()
	for _, s := range subs {
		s.shutdown()
	}
	// The link is already failed or closing; its close error is noise.
	_ = c.conn.Close()
}
