package pubsub

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTestLog(t *testing.T) *LogStore {
	t.Helper()
	ls, err := OpenLogStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ls.Close() })
	return ls
}

func TestLogStoreAppendRead(t *testing.T) {
	ls := openTestLog(t)
	for i := 0; i < 10; i++ {
		off, err := ls.Append("raw.ot", []byte(fmt.Sprintf("layer-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	if n := ls.Len("raw.ot"); n != 10 {
		t.Fatalf("Len = %d", n)
	}
	msgs, err := ls.Read("raw.ot", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 || string(msgs[3].Data) != "layer-3" || msgs[3].Offset != 3 {
		t.Fatalf("msgs = %+v", msgs)
	}
	// Partial reads.
	tail, err := ls.Read("raw.ot", 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || string(tail[0].Data) != "layer-7" {
		t.Fatalf("tail = %+v", tail)
	}
	// Past the end / unknown subject.
	if msgs, err := ls.Read("raw.ot", 100, 0); err != nil || msgs != nil {
		t.Fatalf("past end: %v %v", msgs, err)
	}
	if msgs, err := ls.Read("nope", 0, 0); err != nil || msgs != nil {
		t.Fatalf("unknown subject: %v %v", msgs, err)
	}
}

func TestLogStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ls.Append("a.b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ls.Append("other_topic.x", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}

	ls2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ls2.Close()
	if n := ls2.Len("a.b"); n != 5 {
		t.Fatalf("Len after reopen = %d", n)
	}
	if n := ls2.Len("other_topic.x"); n != 1 {
		t.Fatalf("underscore subject lost: %d", n)
	}
	// Appends continue at the right offset.
	off, err := ls2.Append("a.b", []byte{9})
	if err != nil {
		t.Fatal(err)
	}
	if off != 5 {
		t.Fatalf("offset after reopen = %d, want 5", off)
	}
	msgs, err := ls2.Read("a.b", 4, 2)
	if err != nil || len(msgs) != 2 || msgs[1].Data[0] != 9 {
		t.Fatalf("read after reopen: %+v, %v", msgs, err)
	}
	if got := len(ls2.Subjects()); got != 2 {
		t.Fatalf("Subjects = %d, want 2", got)
	}
}

func TestLogStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Append("t", []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage header promising more bytes.
	path := filepath.Join(dir, subjectToFile("t")+".log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3, 4, 50, 0, 0, 0, 1, 2})
	f.Close()

	ls2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer ls2.Close()
	if n := ls2.Len("t"); n != 1 {
		t.Fatalf("Len = %d, want 1 (torn record dropped)", n)
	}
	// The torn bytes must be gone so new appends stay well-formed.
	if _, err := ls2.Append("t", []byte("next")); err != nil {
		t.Fatal(err)
	}
	msgs, err := ls2.Read("t", 0, 0)
	if err != nil || len(msgs) != 2 || string(msgs[1].Data) != "next" {
		t.Fatalf("after torn-tail recovery: %+v %v", msgs, err)
	}
}

func TestLogStoreDetectsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Append("c", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ls.Close()
	path := filepath.Join(dir, subjectToFile("c")+".log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0xFF // flip a payload byte
	os.WriteFile(path, data, 0o644)

	ls2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ls2.Close()
	if _, err := ls2.Read("c", 0, 0); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("Read = %v, want ErrLogCorrupt", err)
	}
}

func TestSubjectFileNameRoundTrip(t *testing.T) {
	for _, s := range []string{"a", "a.b.c", "with_underscore.x", "a__b.c_-d"} {
		if got := fileToSubject(subjectToFile(s)); got != s {
			t.Errorf("round trip %q → %q", s, got)
		}
	}
}

func TestRecorderCapturesBrokerTraffic(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	ls := openTestLog(t)
	rec, err := Record(b, "strata.raw.>", ls)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := b.Publish("strata.raw.ot.j1", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Publish("strata.events.x", []byte("not recorded")); err != nil {
		t.Fatal(err)
	}
	// Wait for the recorder to drain.
	deadline := time.Now().Add(5 * time.Second)
	for ls.Len("strata.raw.ot.j1") < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	if n := ls.Len("strata.raw.ot.j1"); n != 20 {
		t.Fatalf("recorded %d messages, want 20", n)
	}
	if n := ls.Len("strata.events.x"); n != 0 {
		t.Fatalf("recorded non-matching subject (%d)", n)
	}
	msgs, err := ls.Read("strata.raw.ot.j1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		if m.Data[0] != byte(i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestLogStoreClosedOps(t *testing.T) {
	ls, err := OpenLogStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Append("x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v", err)
	}
	if err := ls.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
}
