package pubsub

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTestLog(t *testing.T) *LogStore {
	t.Helper()
	ls, err := OpenLogStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ls.Close() })
	return ls
}

func TestLogStoreAppendRead(t *testing.T) {
	ls := openTestLog(t)
	for i := 0; i < 10; i++ {
		off, err := ls.Append("raw.ot", []byte(fmt.Sprintf("layer-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	if n := ls.Len("raw.ot"); n != 10 {
		t.Fatalf("Len = %d", n)
	}
	msgs, err := ls.Read("raw.ot", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 || string(msgs[3].Data) != "layer-3" || msgs[3].Offset != 3 {
		t.Fatalf("msgs = %+v", msgs)
	}
	// Partial reads.
	tail, err := ls.Read("raw.ot", 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || string(tail[0].Data) != "layer-7" {
		t.Fatalf("tail = %+v", tail)
	}
	// Past the end / unknown subject.
	if msgs, err := ls.Read("raw.ot", 100, 0); err != nil || msgs != nil {
		t.Fatalf("past end: %v %v", msgs, err)
	}
	if msgs, err := ls.Read("nope", 0, 0); err != nil || msgs != nil {
		t.Fatalf("unknown subject: %v %v", msgs, err)
	}
}

func TestLogStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ls.Append("a.b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ls.Append("other_topic.x", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}

	ls2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ls2.Close()
	if n := ls2.Len("a.b"); n != 5 {
		t.Fatalf("Len after reopen = %d", n)
	}
	if n := ls2.Len("other_topic.x"); n != 1 {
		t.Fatalf("underscore subject lost: %d", n)
	}
	// Appends continue at the right offset.
	off, err := ls2.Append("a.b", []byte{9})
	if err != nil {
		t.Fatal(err)
	}
	if off != 5 {
		t.Fatalf("offset after reopen = %d, want 5", off)
	}
	msgs, err := ls2.Read("a.b", 4, 2)
	if err != nil || len(msgs) != 2 || msgs[1].Data[0] != 9 {
		t.Fatalf("read after reopen: %+v, %v", msgs, err)
	}
	if got := len(ls2.Subjects()); got != 2 {
		t.Fatalf("Subjects = %d, want 2", got)
	}
}

func TestLogStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Append("t", []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage header promising more bytes.
	path := filepath.Join(dir, subjectToFile("t")+".log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3, 4, 50, 0, 0, 0, 1, 2})
	f.Close()

	ls2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer ls2.Close()
	if n := ls2.Len("t"); n != 1 {
		t.Fatalf("Len = %d, want 1 (torn record dropped)", n)
	}
	// The torn bytes must be gone so new appends stay well-formed.
	if _, err := ls2.Append("t", []byte("next")); err != nil {
		t.Fatal(err)
	}
	msgs, err := ls2.Read("t", 0, 0)
	if err != nil || len(msgs) != 2 || string(msgs[1].Data) != "next" {
		t.Fatalf("after torn-tail recovery: %+v %v", msgs, err)
	}
}

func TestLogStoreDetectsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Append("c", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ls.Close()
	path := filepath.Join(dir, subjectToFile("c")+".log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0xFF // flip a payload byte
	os.WriteFile(path, data, 0o644)

	ls2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ls2.Close()
	if _, err := ls2.Read("c", 0, 0); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("Read = %v, want ErrLogCorrupt", err)
	}
}

func TestSubjectFileNameRoundTrip(t *testing.T) {
	for _, s := range []string{"a", "a.b.c", "with_underscore.x", "a__b.c_-d"} {
		if got := fileToSubject(subjectToFile(s)); got != s {
			t.Errorf("round trip %q → %q", s, got)
		}
	}
}

func TestRecorderCapturesBrokerTraffic(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	ls := openTestLog(t)
	rec, err := Record(b, "strata.raw.>", ls)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := b.Publish("strata.raw.ot.j1", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Publish("strata.events.x", []byte("not recorded")); err != nil {
		t.Fatal(err)
	}
	// Wait for the recorder to drain.
	deadline := time.Now().Add(5 * time.Second)
	for ls.Len("strata.raw.ot.j1") < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	if n := ls.Len("strata.raw.ot.j1"); n != 20 {
		t.Fatalf("recorded %d messages, want 20", n)
	}
	if n := ls.Len("strata.events.x"); n != 0 {
		t.Fatalf("recorded non-matching subject (%d)", n)
	}
	msgs, err := ls.Read("strata.raw.ot.j1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		if m.Data[0] != byte(i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestLogStoreClosedOps(t *testing.T) {
	ls, err := OpenLogStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Append("x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v", err)
	}
	if err := ls.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
}

func TestLogStoreGroupCommitDurableWithoutClose(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLogStore(dir, WithLogSync(SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent appenders exercise the coalescing path.
	var wg sync.WaitGroup
	const writers, per = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := ls.Append("grp", []byte{byte(w), byte(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	commits, syncs := ls.SyncStats()
	if commits != writers*per {
		t.Fatalf("commits = %d, want %d", commits, writers*per)
	}
	if syncs == 0 || syncs > commits {
		t.Fatalf("syncs = %d (commits %d)", syncs, commits)
	}
	// Every returned append must be on disk even if the process dies here:
	// reopen the directory without closing the first store (a close would
	// flush, masking a missing fsync path).
	ls2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := ls2.Len("grp"); n != writers*per {
		t.Fatalf("records on disk = %d, want %d", n, writers*per)
	}
	ls2.Close()
	ls.Close()
}

func TestLogStoreGroupCommitTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLogStore(dir, WithLogSync(SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ls.Append("t", []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ls.Close()
	// Crash mid-append: a header promising more bytes than follow.
	path := filepath.Join(dir, subjectToFile("t")+".log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 9, 9, 9, 40, 0, 0, 0, 1})
	f.Close()

	ls2, err := OpenLogStore(dir, WithLogSync(SyncGroup))
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer ls2.Close()
	if n := ls2.Len("t"); n != 3 {
		t.Fatalf("Len = %d, want 3 (torn record dropped)", n)
	}
	off, err := ls2.Append("t", []byte("after-crash"))
	if err != nil || off != 3 {
		t.Fatalf("append after recovery: off=%d err=%v", off, err)
	}
	msgs, err := ls2.Read("t", 0, 0)
	if err != nil || len(msgs) != 4 || string(msgs[3].Data) != "after-crash" {
		t.Fatalf("after recovery: %+v %v", msgs, err)
	}
}

func TestLogStoreSyncIntervalFlushes(t *testing.T) {
	ls, err := OpenLogStore(t.TempDir(), WithLogSync(SyncInterval), WithLogSyncInterval(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if _, err := ls.Append("iv", []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, syncs := ls.SyncStats(); syncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCursorNextAdvances(t *testing.T) {
	ls := openTestLog(t)
	for i := 0; i < 5; i++ {
		if _, err := ls.Append("cur", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c := ls.Cursor("cur", 0)
	msgs, err := c.Next(2)
	if err != nil || len(msgs) != 2 || c.Offset() != 2 {
		t.Fatalf("Next(2): %d msgs, off %d, %v", len(msgs), c.Offset(), err)
	}
	msgs, err = c.Next(0)
	if err != nil || len(msgs) != 3 || msgs[0].Offset != 2 || c.Offset() != 5 {
		t.Fatalf("Next(0): %+v off %d, %v", msgs, c.Offset(), err)
	}
	msgs, err = c.Next(0)
	if err != nil || msgs != nil {
		t.Fatalf("caught-up Next: %v %v", msgs, err)
	}
}

func TestCursorNextWaitTailsNotYetExistingTopic(t *testing.T) {
	ls := openTestLog(t)
	c := ls.Cursor("late.topic", 0)
	errCh := make(chan error, 1)
	got := make(chan []StoredMessage, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		msgs, err := c.NextWait(ctx, 0)
		errCh <- err
		got <- msgs
	}()
	time.Sleep(10 * time.Millisecond) // let the cursor park
	if _, err := ls.Append("late.topic", []byte("born")); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	msgs := <-got
	if len(msgs) != 1 || string(msgs[0].Data) != "born" || c.Offset() != 1 {
		t.Fatalf("tailed: %+v off %d", msgs, c.Offset())
	}
}

func TestCursorNextWaitHonorsContext(t *testing.T) {
	ls := openTestLog(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := ls.Cursor("quiet", 0).NextWait(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("NextWait = %v, want deadline exceeded", err)
	}
}

func TestCursorNextWaitUnblocksOnClose(t *testing.T) {
	ls, err := OpenLogStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := ls.Cursor("quiet", 0).NextWait(context.Background(), 0)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("NextWait after close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NextWait did not unblock on Close")
	}
}
