package pubsub

import (
	"bufio"
	"bytes"
	"testing"
	"time"
)

// drainFrames decodes every complete frame in buf, returning the op bytes in
// wire order.
func drainFrames(t *testing.T, buf *bytes.Buffer) []byte {
	t.Helper()
	r := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	var ops []byte
	for {
		op, _, err := readFrame(r)
		if err != nil {
			return ops
		}
		ops = append(ops, op)
	}
}

// TestCorkedWriterDisabledFlushesEveryFrame: interval 0 is the documented
// opt-out — every write flushes inline (pre-cork behavior) and no flusher
// goroutine exists to race the assertions.
func TestCorkedWriterDisabledFlushesEveryFrame(t *testing.T) {
	var buf bytes.Buffer
	var stats flushStats
	cw := newCorkedWriter(bufio.NewWriter(&buf), 0, &stats)
	for i := 0; i < 5; i++ {
		if err := cw.writeCorked(opPub, []byte("s"), []byte("m")); err != nil {
			t.Fatalf("writeCorked: %v", err)
		}
	}
	if frames, flushes := stats.frames.Load(), stats.flushes.Load(); frames != 5 || flushes != 5 {
		t.Fatalf("frames=%d flushes=%d, want 5/5 (corking disabled)", frames, flushes)
	}
	if got := drainFrames(t, &buf); len(got) != 5 {
		t.Fatalf("decoded %d frames, want 5", len(got))
	}
	if err := cw.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := cw.writeCorked(opPub, []byte("s")); err != ErrClosed {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

// TestCorkedWriterWriteNowFlushesEarlierCorkedFrames: a control frame must
// carry any data frames buffered before it, in write order — the wire order
// invariant the shared buffer exists to preserve.
func TestCorkedWriterWriteNowFlushesEarlierCorkedFrames(t *testing.T) {
	var buf bytes.Buffer
	// An hour-long interval: after the flusher's first immediate flush, any
	// further corked frames stay buffered until something flushes inline.
	cw := newCorkedWriter(bufio.NewWriter(&buf), time.Hour, nil)
	defer cw.close()
	if err := cw.writeCorked(opPub, []byte("a"), []byte("1")); err != nil {
		t.Fatalf("writeCorked: %v", err)
	}
	if err := cw.writeNow(opPong); err != nil {
		t.Fatalf("writeNow: %v", err)
	}
	got := drainFrames(t, &buf)
	if len(got) != 2 || got[0] != opPub || got[1] != opPong {
		t.Fatalf("wire ops = %v, want [opPub opPong] in write order", got)
	}
}

// TestCorkedWriterCloseFlushesBufferedFrames: close is a durability point —
// frames corked but not yet flushed must reach the underlying writer before
// the connection tears down.
func TestCorkedWriterCloseFlushesBufferedFrames(t *testing.T) {
	var buf bytes.Buffer
	var stats flushStats
	cw := newCorkedWriter(bufio.NewWriter(&buf), time.Hour, &stats)
	for i := 0; i < 3; i++ {
		if err := cw.writeCorked(opPub, []byte("s"), []byte("m")); err != nil {
			t.Fatalf("writeCorked: %v", err)
		}
	}
	if err := cw.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := drainFrames(t, &buf); len(got) != 3 {
		t.Fatalf("decoded %d frames after close, want all 3", len(got))
	}
	if frames, flushes := stats.frames.Load(), stats.flushes.Load(); flushes > frames {
		t.Fatalf("flushes (%d) exceed frames (%d)", flushes, frames)
	}
}

// TestClientFlushesSavedUnderBurst: end-to-end coalescing evidence — a pub
// burst on a corked connection reaches the subscriber intact while the client
// issues far fewer socket flushes than frames.
func TestClientFlushesSavedUnderBurst(t *testing.T) {
	_, srv := startTestServer(t)

	sub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial sub: %v", err)
	}
	defer sub.Close()
	cs, err := sub.Subscribe("burst", WithSubBuffer(256))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// Barrier: the server's read loop has registered the subscription.
	if err := sub.Ping(5 * time.Second); err != nil {
		t.Fatalf("Ping sub: %v", err)
	}

	// An hour-long interval so only the flusher's initial idle flush and the
	// Ping barrier ever hit the socket: coalescing becomes deterministic.
	pub, err := Dial(srv.Addr(), WithDialFlushInterval(time.Hour))
	if err != nil {
		t.Fatalf("Dial pub: %v", err)
	}
	defer pub.Close()

	const n = 50
	for i := 0; i < n; i++ {
		if err := pub.Publish("burst", []byte{byte(i)}); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	// Ping flushes the corked burst and round-trips the broker.
	if err := pub.Ping(5 * time.Second); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-cs.C:
			if len(m.Data) != 1 || m.Data[0] != byte(i) {
				t.Fatalf("msg %d = %v, want [%d] (order broken)", i, m.Data, i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("msg %d never arrived: corked frames lost", i)
		}
	}
	if saved := pub.FlushesSaved(); saved < n/2 {
		t.Fatalf("FlushesSaved = %d, want at least %d (burst should coalesce)", saved, n/2)
	}
}
