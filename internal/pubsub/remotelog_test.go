package pubsub

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestRemoteLogFetchAcrossSever is the core contract of the remote fetch
// protocol: a RemoteCursor on a faulty link reads exactly the stored record
// sequence — contiguous offsets, byte-for-byte payloads — even when the link
// is severed mid-stream and requests/responses are lost and retried.
func TestRemoteLogFetchAcrossSever(t *testing.T) {
	const subject = "strata.raw.remote.j1"
	h := newReconnectHarness(t) // h.rc reaches the broker through the proxy

	// The log's owner connects directly (its side of the topology is not
	// under test) and serves fetches.
	direct, err := DialReconnect(h.srv.Addr(),
		WithReconnectWait(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	ls := openTestLog(t)
	for i := 0; i < 50; i++ {
		if _, err := ls.Append(subject, []byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := ServeLog(direct, ls, subject)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cur := NewRemoteCursor(h.rc, subject, 0)
	read := func(n int) []StoredMessage {
		t.Helper()
		var out []StoredMessage
		for len(out) < n {
			msgs, err := cur.Next(ctx, 7) // small batches force many round trips
			if err != nil {
				t.Fatalf("Next after %d records: %v", len(out), err)
			}
			out = append(out, msgs...)
		}
		return out
	}

	got := read(20) // may overshoot to a batch boundary
	h.proxy.Sever() // cut the consumer's link mid-stream
	got = append(got, read(50-len(got))...)

	if len(got) != 50 {
		t.Fatalf("read %d records, want 50", len(got))
	}
	for i, m := range got {
		if m.Offset != uint64(i) {
			t.Fatalf("record %d has offset %d, want %d (gap or duplicate)", i, m.Offset, i)
		}
		if want := fmt.Sprintf("record-%03d", i); string(m.Data) != want {
			t.Fatalf("record %d = %q, want %q", i, m.Data, want)
		}
	}

	// Live tail: records appended after the cursor caught up arrive via the
	// server's long poll.
	tailCtx, tailCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer tailCancel()
	done := make(chan error, 1)
	go func() {
		msgs, err := cur.Next(tailCtx, 10)
		if err == nil && (len(msgs) == 0 || msgs[0].Offset != 50) {
			err = fmt.Errorf("tail read = %d msgs, first offset %d", len(msgs), msgs[0].Offset)
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := ls.Append(subject, []byte("record-050")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("tail follow: %v", err)
	}
}
