package pubsub

import (
	"testing"

	"strata/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind —
// brokers, servers, client connections, and reconnecting sessions must all
// be closed before a test returns.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
