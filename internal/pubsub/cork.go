package pubsub

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// defaultFlushInterval is the pacing floor between socket flushes of a corked
// writer under sustained load. One flush per interval amortizes the syscall
// across every frame buffered meanwhile; an idle writer still flushes as soon
// as the flusher goroutine wakes (one kick), so single-frame latency stays in
// the tens of microseconds.
const defaultFlushInterval = 100 * time.Microsecond

// flushStats counts frames written versus socket flushes issued. frames−flushes
// is the number of syscalls the cork saved relative to the old
// flush-every-frame writer. Shared across writers (the server aggregates all
// connections into one).
type flushStats struct {
	frames  atomic.Uint64
	flushes atomic.Uint64
}

// corkedWriter serializes frame writes onto one bufio.Writer and decouples
// writing from flushing. Data frames go through writeCorked, which buffers the
// frame and nudges a background flusher; the flusher flushes immediately when
// the writer was idle and at most once per interval under load (the "cork").
// Control frames that answer an in-flight request (pong, err, sub acks in the
// client) use writeNow, which flushes inline — including any data frames
// buffered before them, so the wire order always matches the write order.
//
// interval 0 disables corking entirely: every write flushes inline, which is
// exactly the pre-cork behavior (and spawns no flusher goroutine).
type corkedWriter struct {
	interval time.Duration
	stats    *flushStats

	mu     sync.Mutex
	w      *bufio.Writer
	err    error // first write/flush error; sticky
	dirty  bool  // frames buffered since the last flush
	closed bool
	// scratch holds the length prefix, op, and metadata of a frame built by
	// writeMsg; guarded by mu and reused across frames, so the steady
	// publish/deliver path assembles headers without allocating.
	scratch []byte

	kick chan struct{} // cap 1: "there is unflushed data"
	quit chan struct{}
	done chan struct{}
	once sync.Once
}

func newCorkedWriter(w *bufio.Writer, interval time.Duration, stats *flushStats) *corkedWriter {
	if stats == nil {
		stats = &flushStats{}
	}
	cw := &corkedWriter{interval: interval, stats: stats, w: w}
	if interval > 0 {
		cw.kick = make(chan struct{}, 1)
		cw.quit = make(chan struct{})
		cw.done = make(chan struct{})
		go cw.flusher()
	}
	return cw
}

// writeCorked buffers one frame and schedules a flush. The frame reaches the
// socket after at most one flusher wakeup (idle) or one interval (loaded).
func (cw *corkedWriter) writeCorked(op byte, payload ...[]byte) error {
	cw.mu.Lock()
	if err := cw.writeLocked(op, payload...); err != nil {
		cw.mu.Unlock()
		return err
	}
	if cw.interval <= 0 {
		err := cw.flushLocked()
		cw.mu.Unlock()
		return err
	}
	cw.dirty = true
	cw.mu.Unlock()
	select {
	case cw.kick <- struct{}{}:
	default: // a wakeup is already pending; it covers this frame too
	}
	return nil
}

// writeMsg assembles and writes one publish/deliver frame (opPub, opPubT,
// opMsg, opMsgT) through the cork without the per-field header slices of the
// generic variadic path: the length prefix, op, and metadata are built into
// the writer's reusable scratch and written in one call, and the payload is
// handed to the bufio writer directly (no staging copy for an 8 MB image
// frame). sid/seq ride only in the opMsg variants, tp only in the T variants.
func (cw *corkedWriter) writeMsg(op byte, sid, seq uint64, tp, subject, reply string, data []byte) error {
	cw.mu.Lock()
	if cw.err != nil {
		cw.mu.Unlock()
		return cw.err
	}
	if cw.closed {
		cw.mu.Unlock()
		return ErrClosed
	}
	b := append(cw.scratch[:0], 0, 0, 0, 0, op)
	if op == opMsg || op == opMsgT {
		b = binary.LittleEndian.AppendUint64(b, sid)
		b = binary.LittleEndian.AppendUint64(b, seq)
	}
	if op == opPubT || op == opMsgT {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(tp)))
		b = append(b, tp...)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(subject)))
	b = append(b, subject...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(reply)))
	b = append(b, reply...)
	cw.scratch = b
	total := len(b) - 4 + len(data)
	if total > maxFrameSize {
		cw.mu.Unlock()
		return fmt.Errorf("pubsub: frame too large (%d bytes)", total)
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(total))
	if _, err := cw.w.Write(b); err != nil {
		cw.err = err
		cw.mu.Unlock()
		return err
	}
	if len(data) > 0 {
		if _, err := cw.w.Write(data); err != nil {
			cw.err = err
			cw.mu.Unlock()
			return err
		}
	}
	cw.stats.frames.Add(1)
	if cw.interval <= 0 {
		err := cw.flushLocked()
		cw.mu.Unlock()
		return err
	}
	cw.dirty = true
	cw.mu.Unlock()
	select {
	case cw.kick <- struct{}{}:
	default: // a wakeup is already pending; it covers this frame too
	}
	return nil
}

// writeNow writes one frame and flushes before returning. Any corked frames
// written earlier flush with it (same buffer, same lock), preserving order.
func (cw *corkedWriter) writeNow(op byte, payload ...[]byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := cw.writeLocked(op, payload...); err != nil {
		return err
	}
	return cw.flushLocked()
}

func (cw *corkedWriter) writeLocked(op byte, payload ...[]byte) error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		return ErrClosed
	}
	if err := writeFrameTo(cw.w, op, payload...); err != nil {
		cw.err = err
		return err
	}
	cw.stats.frames.Add(1)
	return nil
}

func (cw *corkedWriter) flushLocked() error {
	if cw.err != nil {
		return cw.err
	}
	if err := cw.w.Flush(); err != nil {
		cw.err = err
		return err
	}
	cw.stats.flushes.Add(1)
	cw.dirty = false
	return nil
}

// flush pushes any corked frames to the socket immediately. Used by callers
// that batched a burst of writes and now need them on the wire (e.g. the
// reconnect restore path).
func (cw *corkedWriter) flush() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return cw.err
	}
	if !cw.dirty {
		return nil
	}
	return cw.flushLocked()
}

// flusher drains the cork. An idle writer flushes the moment a frame appears
// (one goroutine wakeup, no timer in the path — request/reply latency is
// preserved); only when another kick is already pending after a flush — the
// writer is clearly under sustained load — does it sit out one interval so the
// burst coalesces into one syscall per interval. bufio's own buffer-full
// write-through bounds memory meanwhile.
func (cw *corkedWriter) flusher() {
	defer close(cw.done)
	pause := time.NewTimer(cw.interval)
	if !pause.Stop() {
		<-pause.C
	}
	for {
		select {
		case <-cw.quit:
			return
		case <-cw.kick:
		}
		cw.flushDirty()
		select {
		case <-cw.quit:
			return
		case <-cw.kick:
			// More frames arrived while flushing: pace, then flush the
			// accumulated burst in one go.
			pause.Reset(cw.interval)
			select {
			case <-pause.C:
			case <-cw.quit:
				return
			}
			cw.flushDirty()
		default:
			// Idle again: block on the next kick.
		}
	}
}

func (cw *corkedWriter) flushDirty() {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if !cw.dirty || cw.err != nil {
		return
	}
	if err := cw.w.Flush(); err != nil {
		cw.err = err
		return
	}
	cw.stats.flushes.Add(1)
	cw.dirty = false
}

// close stops the flusher and flushes whatever is still buffered. Writes after
// close fail with ErrClosed. Safe to call twice; returns the writer's sticky
// error, if any.
func (cw *corkedWriter) close() error {
	cw.once.Do(func() {
		if cw.quit != nil {
			close(cw.quit)
			<-cw.done
		}
		cw.mu.Lock()
		if cw.dirty && cw.err == nil {
			if err := cw.w.Flush(); err != nil {
				cw.err = err
			} else {
				cw.stats.flushes.Add(1)
				cw.dirty = false
			}
		}
		cw.closed = true
		cw.mu.Unlock()
	})
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.err
}
