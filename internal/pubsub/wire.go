package pubsub

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: length-prefixed binary frames over TCP.
//
//	frameLen uint32 (length of op + payload)
//	op       byte
//	payload  op-specific (all integers little endian)
//
//	opPub:   subjLen uint16, subject, replyLen uint16, reply, data...
//	opSub:   sid uint64, patLen uint16, pattern, queueLen uint16, queue
//	opUnsub: sid uint64
//	opMsg:   sid uint64, seq uint64, subjLen uint16, subject, replyLen uint16, reply, data...
//	opPing/opPong: empty
//	opErr:   utf-8 message
//	opPubT:  tpLen uint16, traceparent, then the opPub layout
//	opMsgT:  sid uint64, seq uint64, tpLen uint16, traceparent, then subject/reply/data as opMsg
//
// opPubT/opMsgT are the trace-carrying variants of opPub/opMsg: a W3C
// traceparent header (telemetry.TraceContext) rides ahead of the regular
// payload, so a span started in the publishing process continues in the
// broker and every subscriber. Untraced messages keep using opPub/opMsg —
// the common path pays nothing, and old peers never see the new ops.
const (
	opPub   byte = 1
	opSub   byte = 2
	opUnsub byte = 3
	opMsg   byte = 4
	opPing  byte = 5
	opPong  byte = 6
	opErr   byte = 7
	opPubT  byte = 8
	opMsgT  byte = 9
)

// maxFrameSize bounds a frame to 64 MiB: comfortably above a full-resolution
// 2000×2000 16-bit OT image (8 MiB) plus headers, but small enough to reject
// garbage lengths from a corrupted stream.
const maxFrameSize = 64 << 20

// writeFrameTo writes one frame into w's buffer without flushing — the write
// phase of a send. The caller serializes access to w and decides when the
// buffered frames hit the socket (see corkedWriter for the flush policy).
func writeFrameTo(w *bufio.Writer, op byte, payload ...[]byte) error {
	total := 1
	for _, p := range payload {
		total += len(p)
	}
	if total > maxFrameSize {
		return fmt.Errorf("pubsub: frame too large (%d bytes)", total)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(total))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range payload {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// writeFrame writes one frame and flushes it — the uncorked path. The caller
// serializes access to w.
func writeFrame(w *bufio.Writer, op byte, payload ...[]byte) error {
	if err := writeFrameTo(w, op, payload...); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one frame, returning its op and payload.
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameSize {
		return 0, nil, fmt.Errorf("pubsub: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

func u16(v int) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(v))
	return b[:]
}

func u64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// cursor is a tiny helper for decoding frame payloads with bounds checks.
type cursor struct {
	b   []byte
	pos int
}

func (c *cursor) u16() (int, error) {
	if c.pos+2 > len(c.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint16(c.b[c.pos:])
	c.pos += 2
	return int(v), nil
}

func (c *cursor) u64() (uint64, error) {
	if c.pos+8 > len(c.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(c.b[c.pos:])
	c.pos += 8
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.pos+n > len(c.b) {
		return nil, io.ErrUnexpectedEOF
	}
	v := c.b[c.pos : c.pos+n]
	c.pos += n
	return v, nil
}

func (c *cursor) rest() []byte {
	v := c.b[c.pos:]
	c.pos = len(c.b)
	return v
}
