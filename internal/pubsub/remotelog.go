package pubsub

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"
)

// Remote log fetch: a pull-based, offset-addressed protocol for reading a
// LogStore across process boundaries through the broker.
//
// The broker itself is at-most-once — a subscriber that is partitioned away
// simply misses messages — so a worker that must process *every* record of a
// durable log cannot just subscribe to the live subject. Instead the process
// that owns the LogStore runs a LogServer, answering "give me records from
// offset N" requests on a well-known fetch subject, and remote consumers
// drive a RemoteCursor that requests batches by explicit offset. Faults only
// delay a fetch or force a retry of the same offsets: the offset is the
// idempotency key, so severed links, blackholes, broker restarts, and
// duplicated responses all converge to exactly the stored record sequence.
// Combined with checkpointed source positions and a DeliverDurable sink this
// yields effectively-once output across real process crashes (DESIGN.md §14).

// logFetchPrefix namespaces the fetch subjects derived from stored subjects.
const logFetchPrefix = "strata.logfetch"

// remoteLogMaxBatch caps the encoded payload of one fetch response, well
// under maxFrameSize so a response frame can never be rejected by the wire.
const remoteLogMaxBatch = 1 << 20

// LogFetchSubject returns the request subject on which a LogServer for
// subject answers fetches. Stored subjects are dot-token hierarchies, so
// appending one keeps the fetch subject valid.
func LogFetchSubject(subject string) string {
	return logFetchPrefix + "." + subject
}

// logFetchReq is the fixed-size fetch request: start offset, batch cap, and
// how long the server may hold the request open waiting for new records
// (long poll) before answering empty.
type logFetchReq struct {
	from   uint64
	max    uint32
	waitMs uint32
}

func encodeLogFetchReq(r logFetchReq) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:8], r.from)
	binary.LittleEndian.PutUint32(buf[8:12], r.max)
	binary.LittleEndian.PutUint32(buf[12:16], r.waitMs)
	return buf
}

func decodeLogFetchReq(b []byte) (logFetchReq, error) {
	if len(b) != 16 {
		return logFetchReq{}, fmt.Errorf("pubsub: log fetch request is %d bytes, want 16", len(b))
	}
	return logFetchReq{
		from:   binary.LittleEndian.Uint64(b[0:8]),
		max:    binary.LittleEndian.Uint32(b[8:12]),
		waitMs: binary.LittleEndian.Uint32(b[12:16]),
	}, nil
}

// encodeLogBatch packs records as repeated [offset u64][len u32][data],
// stopping before the payload would exceed remoteLogMaxBatch.
func encodeLogBatch(msgs []StoredMessage) []byte {
	var out []byte
	for _, m := range msgs {
		if len(out)+12+len(m.Data) > remoteLogMaxBatch && len(out) > 0 {
			break
		}
		var hdr [12]byte
		binary.LittleEndian.PutUint64(hdr[0:8], m.Offset)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(m.Data)))
		out = append(out, hdr[:]...)
		out = append(out, m.Data...)
	}
	return out
}

// decodeLogBatch is the inverse of encodeLogBatch. A truncated tail ends the
// batch (the retry refetches it); records before the truncation are kept.
func decodeLogBatch(subject string, b []byte) []StoredMessage {
	var out []StoredMessage
	for len(b) >= 12 {
		off := binary.LittleEndian.Uint64(b[0:8])
		n := int(binary.LittleEndian.Uint32(b[8:12]))
		b = b[12:]
		if n > len(b) {
			break
		}
		out = append(out, StoredMessage{Subject: subject, Offset: off, Data: b[:n]})
		b = b[n:]
	}
	return out
}

// LogServer answers offset-addressed fetch requests for one subject of a
// local LogStore over a ReconnectConn. The subscription is durable: it
// survives broker restarts, so a remote cursor's retries find the server
// again once the link heals.
type LogServer struct {
	sub    *ReconnectSub
	cancel context.CancelFunc
	done   chan struct{}
}

// ServeLog starts answering fetches for subject from store on rc's broker.
// Close the returned server to stop.
func ServeLog(rc *ReconnectConn, store *LogStore, subject string) (*LogServer, error) {
	if err := ValidateSubject(subject); err != nil {
		return nil, err
	}
	sub, err := rc.Subscribe(LogFetchSubject(subject), WithSubBuffer(64))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &LogServer{sub: sub, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for msg := range sub.C {
			req, err := decodeLogFetchReq(msg.Data)
			if err != nil || msg.Reply == "" {
				continue // not ours to answer; a retry will re-ask properly
			}
			max := int(req.max)
			msgs, err := store.Read(subject, req.from, max)
			if err == nil && len(msgs) == 0 && req.waitMs > 0 {
				// Long poll: hold the request open briefly so a caught-up
				// consumer doesn't hot-loop empty fetches.
				wctx, wcancel := context.WithTimeout(ctx, time.Duration(req.waitMs)*time.Millisecond)
				cur := store.Cursor(subject, req.from)
				msgs, _ = cur.NextWait(wctx, max)
				wcancel()
			}
			// An empty (or error) answer is still an answer: the cursor
			// distinguishes "nothing yet" from "nobody home" by the reply
			// arriving at all.
			_ = rc.Publish(msg.Reply, encodeLogBatch(msgs))
		}
	}()
	return s, nil
}

// Close stops answering fetches and releases the subscription.
func (s *LogServer) Close() error {
	s.cancel()
	err := s.sub.Unsubscribe()
	<-s.done
	return err
}

// RemoteCursor reads a remote LogStore subject by explicit offset through a
// ReconnectConn, retrying fetches across link faults. It is the consumer
// half of ServeLog and the remote analogue of LogStore.Cursor: Next returns
// records in offset order with no gaps, regardless of how often the link
// drops mid-fetch. Not safe for concurrent use.
type RemoteCursor struct {
	rc      *ReconnectConn
	subject string
	next    uint64

	// attempt bounds one request/response round trip before the cursor
	// re-asks; it must exceed the server-side long poll (pollMs).
	attempt time.Duration
	pollMs  uint32
}

// NewRemoteCursor returns a cursor over subject starting at offset from.
func NewRemoteCursor(rc *ReconnectConn, subject string, from uint64) *RemoteCursor {
	return &RemoteCursor{
		rc:      rc,
		subject: subject,
		next:    from,
		attempt: 2 * time.Second,
		pollMs:  250,
	}
}

// Offset returns the offset the next read will start at.
func (c *RemoteCursor) Offset() uint64 { return c.next }

// Next fetches up to max records at the cursor position, blocking until at
// least one record arrives, ctx is done, or the conn closes. Lost requests
// and lost responses are retried at the same offset; duplicate or stale
// responses are filtered by offset, so the stream Next returns is exactly
// the stored sequence.
func (c *RemoteCursor) Next(ctx context.Context, max int) ([]StoredMessage, error) {
	if max <= 0 {
		max = 256
	}
	for {
		msgs, err := c.fetchOnce(ctx, max)
		if err != nil || len(msgs) > 0 {
			return msgs, err
		}
		// Empty answer or timed-out attempt: re-ask at the same offset.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
	}
}

// fetchOnce runs one request/response round trip. It returns (nil, nil) when
// the attempt yielded no records (no answer in time, or an empty answer),
// which the caller treats as "ask again".
func (c *RemoteCursor) fetchOnce(ctx context.Context, max int) ([]StoredMessage, error) {
	inbox := nextInbox()
	sub, err := c.rc.Subscribe(inbox, WithSubBuffer(4))
	if err != nil {
		return nil, err
	}
	defer func() { _ = sub.Unsubscribe() }()

	req := logFetchReq{from: c.next, max: uint32(max), waitMs: c.pollMs}
	if err := c.rc.PublishMsg(Message{
		Subject: LogFetchSubject(c.subject),
		Reply:   inbox,
		Data:    encodeLogFetchReq(req),
	}); err != nil {
		return nil, err
	}

	timer := time.NewTimer(c.attempt)
	defer timer.Stop()
	select {
	case msg, ok := <-sub.C:
		if !ok {
			return nil, ErrClosed
		}
		msgs := decodeLogBatch(c.subject, msg.Data)
		// Drop anything a stale or duplicated response replays from before
		// the cursor position, and anything after a gap: offsets must
		// continue exactly at next.
		out := msgs[:0]
		want := c.next
		for _, m := range msgs {
			if m.Offset == want {
				out = append(out, m)
				want++
			}
		}
		c.next = want
		if len(out) == 0 {
			return nil, nil
		}
		return out, nil
	case <-timer.C:
		return nil, nil // lost request or response; caller re-asks
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
