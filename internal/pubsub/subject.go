// Package pubsub implements the publish/subscribe substrate STRATA uses for
// its Raw Data and Event connectors (the paper uses Apache Kafka; this
// package provides the same architectural role with an embeddable broker).
//
// Subjects are dot-separated token hierarchies ("strata.raw.ot.job42") with
// NATS-style wildcards in subscription patterns: '*' matches exactly one
// token, '>' matches one or more trailing tokens. Subscriptions are buffered
// with an explicit overflow policy, and queue groups load-balance a subject
// across a set of subscribers. A TCP server/client pair (see server.go,
// client.go) extends the broker across processes.
package pubsub

import (
	"errors"
	"fmt"
	"strings"
)

var (
	// ErrBadSubject is returned for empty subjects, empty tokens, or
	// wildcard characters in a publish subject.
	ErrBadSubject = errors.New("pubsub: invalid subject")

	// ErrBadPattern is returned for malformed subscription patterns (e.g.
	// '>' not in final position).
	ErrBadPattern = errors.New("pubsub: invalid pattern")

	// ErrClosed is returned when using a closed broker, subscription, or
	// connection.
	ErrClosed = errors.New("pubsub: closed")

	// ErrSlowConsumer is returned by a blocking-policy publish that cannot
	// deliver because a subscriber's buffer stayed full.
	ErrSlowConsumer = errors.New("pubsub: slow consumer")
)

// ValidateSubject checks a publish subject: non-empty dot-separated tokens,
// no wildcards.
func ValidateSubject(subject string) error {
	if subject == "" {
		return fmt.Errorf("%w: empty", ErrBadSubject)
	}
	for _, tok := range strings.Split(subject, ".") {
		if tok == "" {
			return fmt.Errorf("%w: empty token in %q", ErrBadSubject, subject)
		}
		if tok == "*" || tok == ">" {
			return fmt.Errorf("%w: wildcard in publish subject %q", ErrBadSubject, subject)
		}
	}
	return nil
}

// ValidatePattern checks a subscription pattern: non-empty tokens, '*'
// anywhere, '>' only as the final token.
func ValidatePattern(pattern string) error {
	if pattern == "" {
		return fmt.Errorf("%w: empty", ErrBadPattern)
	}
	toks := strings.Split(pattern, ".")
	for i, tok := range toks {
		switch {
		case tok == "":
			return fmt.Errorf("%w: empty token in %q", ErrBadPattern, pattern)
		case tok == ">" && i != len(toks)-1:
			return fmt.Errorf("%w: '>' must be last in %q", ErrBadPattern, pattern)
		}
	}
	return nil
}

// Match reports whether subject matches the subscription pattern. Both are
// assumed valid (see ValidateSubject, ValidatePattern).
func Match(pattern, subject string) bool {
	p := strings.Split(pattern, ".")
	s := strings.Split(subject, ".")
	for i, tok := range p {
		if tok == ">" {
			return len(s) >= i+1
		}
		if i >= len(s) {
			return false
		}
		if tok != "*" && tok != s[i] {
			return false
		}
	}
	return len(s) == len(p)
}
