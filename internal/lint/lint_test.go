package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"strata/internal/lint/analysis"
)

// writeModule lays out a throwaway module under a temp dir:
// files maps relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// markFact carries a payload string so the test can prove the fact that
// arrives in the importing package is the one that survived gob encoding,
// not a shared pointer.
type markFact struct{ Payload string }

func (*markFact) AFact() {}

// TestFactsCrossPackage is the facts round-trip acceptance test: an object
// fact exported while analyzing one package must be importable — after the
// driver's gob round-trip at the package boundary — by an analyzer running
// on a package that imports it.
func TestFactsCrossPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module factrt\n\ngo 1.22\n",
		"dep/dep.go": "package dep\n\n// Target is the object the fact rides on.\ntype Target struct{}\n",
		"main.go":    "package main\n\nimport \"factrt/dep\"\n\nvar sentinel dep.Target\n\nfunc main() { _ = sentinel }\n",
	})

	exporter := &analysis.Analyzer{
		Name:      "exporter",
		Doc:       "exports a markFact on every package-scope type named Target",
		FactTypes: []analysis.Fact{(*markFact)(nil)},
		Run: func(pass *analysis.Pass) (any, error) {
			if obj := pass.Pkg.Scope().Lookup("Target"); obj != nil {
				pass.ExportObjectFact(obj, &markFact{Payload: "from " + pass.Pkg.Path()})
			}
			return nil, nil
		},
	}
	consumer := &analysis.Analyzer{
		Name:      "consumer",
		Doc:       "reports the payload of markFacts found on imported objects",
		Requires:  []*analysis.Analyzer{exporter},
		FactTypes: []analysis.Fact{(*markFact)(nil)},
		Run: func(pass *analysis.Pass) (any, error) {
			for _, imp := range pass.Pkg.Imports() {
				obj := imp.Scope().Lookup("Target")
				if obj == nil {
					continue
				}
				var mf markFact
				if pass.ImportObjectFact(obj, &mf) {
					pass.Reportf(pass.Files[0].Pos(), "target fact: %s", mf.Payload)
				}
			}
			return nil, nil
		},
	}

	findings, err := Run(dir, []string{"./..."}, []*analysis.Analyzer{consumer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1: %v", len(findings), findings)
	}
	if want := "target fact: from factrt/dep"; findings[0].Message != want {
		t.Fatalf("fact payload did not survive the round-trip: got %q, want %q", findings[0].Message, want)
	}
	if !strings.HasSuffix(findings[0].Pos.Filename, "main.go") {
		t.Fatalf("finding should be in the importing package, got %s", findings[0].Pos.Filename)
	}
}

// TestDeterministicOrder is the output-stability regression: an analyzer
// that reports in scrambled order (end of file before start, second file's
// pass interleaved by load order) must still produce findings sorted by
// position, then analyzer, then message — identically on every run.
func TestDeterministicOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module detorder\n\ngo 1.22\n",
		"b.go":   "package p\n\nfunc B() {}\n",
		"a.go":   "package p\n\nfunc A() {}\n",
	})

	scrambler := &analysis.Analyzer{
		Name: "scrambler",
		Doc:  "reports end-before-start in every file",
		Run: func(pass *analysis.Pass) (any, error) {
			for _, f := range pass.Files {
				pass.Reportf(f.End()-1, "late")
				pass.Reportf(f.Pos(), "zzz-early")
				pass.Reportf(f.Pos(), "aaa-early")
			}
			return nil, nil
		},
	}

	run := func() []Finding {
		t.Helper()
		findings, err := Run(dir, []string{"./..."}, []*analysis.Analyzer{scrambler})
		if err != nil {
			t.Fatal(err)
		}
		return findings
	}
	first := run()
	if len(first) != 6 {
		t.Fatalf("got %d findings, want 6: %v", len(first), first)
	}
	// Sorted: a.go before b.go, line 1 before line 3, and same-position
	// messages in message order.
	wantOrder := []string{"aaa-early", "zzz-early", "late", "aaa-early", "zzz-early", "late"}
	for i, f := range first {
		if f.Message != wantOrder[i] {
			t.Fatalf("finding %d out of order: got %q, want %q (all: %v)", i, f.Message, wantOrder[i], first)
		}
	}
	if !strings.HasSuffix(first[0].Pos.Filename, "a.go") || !strings.HasSuffix(first[3].Pos.Filename, "b.go") {
		t.Fatalf("files out of order: %v", first)
	}
	if second := run(); !reflect.DeepEqual(first, second) {
		t.Fatalf("two identical runs disagree:\n%v\n%v", first, second)
	}
}
