package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a piece of information an analyzer derives from one package and
// makes available to itself when analyzing packages that import it — "this
// function never returns a non-nil error", "these fields of this type are
// mutated at runtime". Facts must be pointers to gob-serializable structs:
// the driver round-trips every fact through gob at the package boundary, so
// a fact that cannot survive serialization fails loudly instead of silently
// behaving differently under a future separate-process driver.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// ObjectFact is one (object, fact) pair, as returned by AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact is one (package, fact) pair, as returned by AllPackageFacts.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// FactSet is the driver-owned store of all facts produced during one lint
// run. Facts are keyed by (object-or-package, concrete fact type) and are
// shared across analyzers: an analyzer may import a fact type produced by
// one of its Requires dependencies, provided both declare the type in
// FactTypes (which is what makes the dependency explicit and the gob types
// registered).
type FactSet struct {
	objects  map[objFactKey]Fact
	packages map[pkgFactKey]Fact
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

// NewFactSet returns an empty fact store and registers the fact types of
// every analyzer in suite with gob.
func NewFactSet(suite []*Analyzer) *FactSet {
	for _, a := range suite {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
	return &FactSet{
		objects:  make(map[objFactKey]Fact),
		packages: make(map[pkgFactKey]Fact),
	}
}

// factView is one pass's window onto the fact set: imports are restricted
// to the analyzed package's import closure, and fact types are validated
// against the analyzer's FactTypes declaration.
type factView struct {
	set     *FactSet
	visible map[*types.Package]bool
}

func factType(a *Analyzer, fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: %s: fact %T is not a pointer", a, fact))
	}
	for _, declared := range a.FactTypes {
		if reflect.TypeOf(declared) == t {
			return t
		}
	}
	panic(fmt.Sprintf("analysis: %s used fact type %T without declaring it in FactTypes", a, fact))
}

func (v *factView) exportObject(p *Pass, obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s exported a fact on an object outside its package", p.Analyzer))
	}
	v.set.objects[objFactKey{obj, factType(p.Analyzer, fact)}] = fact
}

func (v *factView) importObject(p *Pass, obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg() != p.Pkg && !v.visible[obj.Pkg()] {
		return false
	}
	found, ok := v.set.objects[objFactKey{obj, factType(p.Analyzer, fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(found).Elem())
	return true
}

func (v *factView) exportPackage(p *Pass, fact Fact) {
	v.set.packages[pkgFactKey{p.Pkg, factType(p.Analyzer, fact)}] = fact
}

func (v *factView) importPackage(p *Pass, pkg *types.Package, fact Fact) bool {
	if pkg != p.Pkg && !v.visible[pkg] {
		return false
	}
	found, ok := v.set.packages[pkgFactKey{pkg, factType(p.Analyzer, fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(found).Elem())
	return true
}

func (v *factView) allObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, f := range v.set.objects {
		if k.obj.Pkg() != nil && v.visible[k.obj.Pkg()] {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Object, out[j].Object
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
	return out
}

func (v *factView) allPackageFacts() []PackageFact {
	var out []PackageFact
	for k, f := range v.set.packages {
		if v.visible[k.pkg] {
			out = append(out, PackageFact{Package: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Package.Path() < out[j].Package.Path()
	})
	return out
}

// wireFact is the serialized form of one fact: the stable path of the
// object it is attached to ("" for a package fact) and the fact value
// itself, encoded through gob's interface mechanism (concrete types are
// registered by NewFactSet).
type wireFact struct {
	Key  string
	Fact Fact
}

type wirePackage struct {
	Facts []wireFact
}

// RoundTrip serializes every fact attached to pkg (or its objects) through
// gob and replaces the in-memory entries with the decoded copies. The
// driver calls it once per package, after all analyzers have run on it:
// from then on, only facts that survive serialization — and whose objects
// have a stable cross-package path — remain visible to importers, exactly
// the contract a separate-process driver would impose. It returns the
// encoded blob so tests can assert on the wire form.
func (s *FactSet) RoundTrip(pkg *types.Package) ([]byte, error) {
	wire := wirePackage{}
	var drop []objFactKey
	for k, f := range s.objects {
		if k.obj.Pkg() != pkg {
			continue
		}
		key, ok := objectKey(pkg, k.obj)
		drop = append(drop, k)
		if !ok {
			continue // local object: fact cannot cross the package boundary
		}
		wire.Facts = append(wire.Facts, wireFact{Key: key, Fact: f})
	}
	for k, f := range s.packages {
		if k.pkg != pkg {
			continue
		}
		wire.Facts = append(wire.Facts, wireFact{Key: "", Fact: f})
	}
	for _, k := range drop {
		delete(s.objects, k)
	}
	for k := range s.packages {
		if k.pkg == pkg {
			delete(s.packages, k)
		}
	}
	if len(wire.Facts) == 0 {
		return nil, nil
	}
	// Deterministic blob (map iteration order is random).
	sort.Slice(wire.Facts, func(i, j int) bool {
		if wire.Facts[i].Key != wire.Facts[j].Key {
			return wire.Facts[i].Key < wire.Facts[j].Key
		}
		return fmt.Sprintf("%T", wire.Facts[i].Fact) < fmt.Sprintf("%T", wire.Facts[j].Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts for %s: %w", pkg.Path(), err)
	}
	if err := s.decodeInto(buf.Bytes(), pkg); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeInto decodes a fact blob produced for pkg and installs the facts.
func (s *FactSet) decodeInto(data []byte, pkg *types.Package) error {
	var wire wirePackage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("analysis: decoding facts for %s: %w", pkg.Path(), err)
	}
	for _, wf := range wire.Facts {
		t := reflect.TypeOf(wf.Fact)
		if wf.Key == "" {
			s.packages[pkgFactKey{pkg, t}] = wf.Fact
			continue
		}
		obj, err := lookupObject(pkg, wf.Key)
		if err != nil {
			return err
		}
		s.objects[objFactKey{obj, t}] = wf.Fact
	}
	return nil
}

// objectKey computes a stable, human-readable path for obj within pkg, the
// stdlib stand-in for x/tools' go/types/objectpath. Three object shapes are
// keyable — package-level objects, methods, and struct fields of
// package-level named types — which covers everything the strata analyzers
// attach facts to. The second result is false for anything else (locals,
// anonymous types, embedded-interface methods).
func objectKey(pkg *types.Package, obj types.Object) (string, bool) {
	name := obj.Name()
	if pkg.Scope().Lookup(name) == obj {
		return "o." + name, true
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if named := namedRecv(sig.Recv().Type()); named != nil &&
				pkg.Scope().Lookup(named.Obj().Name()) == named.Obj() {
				return "m." + named.Obj().Name() + "." + name, true
			}
		}
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		for _, tn := range pkg.Scope().Names() {
			t, ok := pkg.Scope().Lookup(tn).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := t.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return "f." + tn + "." + name, true
				}
			}
		}
	}
	return "", false
}

// lookupObject resolves a key produced by objectKey against pkg.
func lookupObject(pkg *types.Package, key string) (types.Object, error) {
	parts := strings.SplitN(key, ".", 3)
	fail := func() (types.Object, error) {
		return nil, fmt.Errorf("analysis: cannot resolve fact key %q in %s", key, pkg.Path())
	}
	if len(parts) < 2 {
		return fail()
	}
	switch parts[0] {
	case "o":
		if obj := pkg.Scope().Lookup(parts[1]); obj != nil {
			return obj, nil
		}
	case "m":
		if len(parts) != 3 {
			return fail()
		}
		tn, ok := pkg.Scope().Lookup(parts[1]).(*types.TypeName)
		if !ok {
			return fail()
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return fail()
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == parts[2] {
				return named.Method(i), nil
			}
		}
	case "f":
		if len(parts) != 3 {
			return fail()
		}
		tn, ok := pkg.Scope().Lookup(parts[1]).(*types.TypeName)
		if !ok {
			return fail()
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return fail()
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == parts[2] {
				return st.Field(i), nil
			}
		}
	}
	return fail()
}

// namedRecv unwraps a method receiver type to its named type, or nil.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
