// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis Analyzer/Pass contract.
//
// The build environment for this repository is offline (no module proxy), so
// the real x/tools framework cannot be vendored. This package keeps the same
// shape — an Analyzer owns a name, a doc string, and a Run function that
// inspects one type-checked package through a Pass — so the strata-lint
// analyzers can be ported to the upstream framework by swapping the import
// path if x/tools ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name must be a valid identifier: it
// is how findings are attributed and how //lint:ignore comments select the
// check to suppress.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic to the driver. The driver applies
	// //lint:ignore suppression after collection, so analyzers report
	// unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}
