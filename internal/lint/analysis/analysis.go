// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis Analyzer/Pass contract.
//
// The build environment for this repository is offline (no module proxy), so
// the real x/tools framework cannot be vendored. This package keeps the same
// shape — an Analyzer owns a name, a doc string, and a Run function that
// inspects one type-checked package through a Pass — so the strata-lint
// analyzers can be ported to the upstream framework by swapping the import
// path if x/tools ever becomes available.
//
// Since stratalint v2 the contract is modular: an analyzer can depend on
// other analyzers (Requires — same-package results through ResultOf) and can
// communicate across package boundaries through serialized Facts (see
// facts.go). The driver in internal/lint walks packages in dependency order
// and analyzers in Requires order, so a fact exported while analyzing a
// dependency is visible when its importers are analyzed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name must be a valid identifier: it
// is how findings are attributed and how //lint:ignore comments select the
// check to suppress.
type Analyzer struct {
	Name string
	Doc  string

	// Requires lists analyzers that must run (successfully) on the same
	// package before this one. Their results are available through
	// Pass.ResultOf, and any facts they exported — on this package or its
	// dependencies — are importable. The driver expands the transitive
	// closure, so requesting an analyzer implicitly runs what it requires.
	Requires []*Analyzer

	// FactTypes lists the concrete fact types this analyzer exports or
	// imports, as typed nil pointers (e.g. (*NeverFails)(nil)). Every type
	// is registered with gob; an analyzer that touches facts without
	// declaring their types here fails loudly at Export/Import time.
	FactTypes []Fact

	// Run inspects one package and returns an optional result value that
	// dependents read through Pass.ResultOf.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ResultOf maps each analyzer in Requires to the value its Run returned
	// for this same package.
	ResultOf map[*Analyzer]any

	// Report delivers a diagnostic to the driver. The driver applies
	// //lint:ignore suppression after collection, so analyzers report
	// unconditionally.
	Report func(Diagnostic)

	// facts is this (analyzer, package) view of the fact store; nil when
	// the driver did not set one up (the analyzer declared no FactTypes).
	facts *factView
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis. The fact becomes visible to this analyzer when it later
// runs on any package that (transitively) imports this one — after a gob
// round-trip, so facts must survive serialization. Facts on objects with no
// stable cross-package path (locals, anonymous types) are silently dropped
// at the package boundary, mirroring x/tools.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("analysis: %s exported a fact but declares no FactTypes", p.Analyzer))
	}
	p.facts.exportObject(p, obj, fact)
}

// ImportObjectFact copies the fact of fact's concrete type attached to obj
// into *fact and reports whether one was found. obj may belong to the
// package under analysis (same-package export) or to any package in its
// import closure.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.importObject(p, obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("analysis: %s exported a fact but declares no FactTypes", p.Analyzer))
	}
	p.facts.exportPackage(p, fact)
}

// ImportPackageFact copies the fact of fact's concrete type attached to pkg
// into *fact and reports whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.importPackage(p, pkg, fact)
}

// AllObjectFacts returns every object fact currently visible to this pass.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.allObjectFacts()
}

// AllPackageFacts returns every package fact currently visible to this pass.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.allPackageFacts()
}

// SetFactView installs the driver's fact view on the pass. It is exported
// for the driver in internal/lint only.
func (p *Pass) SetFactView(v *FactSet, visible map[*types.Package]bool) {
	p.facts = &factView{set: v, visible: visible}
}
