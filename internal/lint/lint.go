// Package lint is the strata-lint driver: it loads packages, runs the
// STRATA contract analyzers over them, and filters findings through
// //lint:ignore suppression comments.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"strata/internal/lint/analysis"
	"strata/internal/lint/loader"
)

// Finding is one unsuppressed diagnostic, resolved to a file position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run loads the packages matching patterns (relative to dir) and applies
// every analyzer to every package. Suppressed findings are dropped; the
// rest are returned sorted by position.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset, pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// Hard type errors make analyzer output unreliable; surface them
	// instead of misreporting. (go vet behaves the same way.)
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}

	var findings []Finding
	for _, pkg := range pkgs {
		sup := scanSuppressions(fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if sup.suppressed(name, pos) {
					return
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: name, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
