// Package lint is the strata-lint driver: it loads packages (plus their
// module-local dependencies), runs the STRATA contract analyzers over them
// in dependency order — threading gob-serialized facts across package
// boundaries and same-package results along each analyzer's Requires DAG —
// and filters findings through //lint:ignore suppression comments.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"strata/internal/lint/analysis"
	"strata/internal/lint/loader"
)

// Finding is one unsuppressed diagnostic, resolved to a file position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run loads the packages matching patterns (relative to dir) together with
// their module-local dependencies and applies every requested analyzer —
// plus everything those analyzers Require, in dependency order — to every
// package. Analyzers run on dependency-only packages too (their facts must
// exist before importers are analyzed), but only diagnostics from packages
// the patterns matched are reported. Suppressed findings are dropped; the
// rest are returned in a deterministic order: position (file, line,
// column), then analyzer name, then message.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	suite, err := expandRequires(analyzers)
	if err != nil {
		return nil, err
	}

	fset, pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// Hard type errors make analyzer output unreliable; surface them
	// instead of misreporting. (go vet behaves the same way.)
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}

	facts := analysis.NewFactSet(suite)

	// visibleFor accumulates, per package, the set of module-local packages
	// whose facts an analyzer running on it may import: the package itself
	// plus its transitive module-local imports. pkgs is topologically
	// ordered, so every dependency's set is complete before its importers'.
	byPath := make(map[string]*loader.Package, len(pkgs))
	visibleFor := make(map[string]map[*types.Package]bool, len(pkgs))
	for _, pkg := range pkgs {
		byPath[pkg.Path] = pkg
		vis := map[*types.Package]bool{pkg.Types: true}
		for _, dep := range pkg.Imports {
			if depPkg, ok := byPath[dep]; ok {
				for p := range visibleFor[depPkg.Path] {
					vis[p] = true
				}
			}
		}
		visibleFor[pkg.Path] = vis
	}

	var findings []Finding
	for _, pkg := range pkgs {
		sup := scanSuppressions(fset, pkg.Files)
		results := make(map[*analysis.Analyzer]any, len(suite))
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				ResultOf:  make(map[*analysis.Analyzer]any, len(a.Requires)),
			}
			for _, req := range a.Requires {
				pass.ResultOf[req] = results[req]
			}
			if len(a.FactTypes) > 0 {
				pass.SetFactView(facts, visibleFor[pkg.Path])
			}
			name := a.Name
			matched := pkg.Matched
			pass.Report = func(d analysis.Diagnostic) {
				if !matched {
					return
				}
				pos := fset.Position(d.Pos)
				if sup.suppressed(name, pos) {
					return
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: name, Message: d.Message})
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
			results[a] = res
		}
		// Gob round-trip at the package boundary: from here on, importers
		// see only facts that survived serialization.
		if _, err := facts.RoundTrip(pkg.Types); err != nil {
			return nil, err
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings deterministically: by position (file, line,
// column), then analyzer name, then message. The baseline diff in CI
// depends on this order being stable across runs and machines.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// expandRequires returns the transitive closure of the requested analyzers
// and their Requires dependencies, in a stable topological order (every
// analyzer after everything it requires). A cycle is a programming error in
// the analyzer definitions and is reported, not tolerated.
func expandRequires(requested []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var order []*analysis.Analyzer
	state := make(map[*analysis.Analyzer]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(a *analysis.Analyzer) error
	visit = func(a *analysis.Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("lint: Requires cycle through analyzer %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range requested {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}
