package analyzers_test

import (
	"testing"

	"strata/internal/lint/analyzers"
	"strata/internal/lint/linttest"
)

// Each analyzer runs over its testdata module; the fixtures pair every
// true-positive (`// want`) with negative cases and exercise the
// //lint:ignore suppression path (statement-level, function-level, and the
// malformed reasonless directive).

func TestStreamclose(t *testing.T) {
	linttest.Run(t, analyzers.Streamclose, "streamclose")
}

func TestLocksend(t *testing.T) {
	linttest.Run(t, analyzers.Locksend, "locksend")
}

func TestGoctx(t *testing.T) {
	linttest.Run(t, analyzers.Goctx, "goctx")
}

func TestErrdrop(t *testing.T) {
	linttest.Run(t, analyzers.Errdrop, "errdrop")
}

func TestBoundedchan(t *testing.T) {
	linttest.Run(t, analyzers.Boundedchan, "boundedchan")
}

// The fact-powered analyzers run over multi-package testdata modules: the
// cross-package cases only produce (or suppress) findings when facts
// exported while analyzing a dependency survive the gob round-trip into
// the importer's pass.

func TestSnapshotgap(t *testing.T) {
	linttest.Run(t, analyzers.Snapshotgap, "snapshotgap")
}

func TestMetricname(t *testing.T) {
	linttest.Run(t, analyzers.Metricname, "metricname")
}

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, analyzers.Atomicmix, "atomicmix")
}
