package analyzers_test

import (
	"testing"

	"strata/internal/lint/analyzers"
	"strata/internal/lint/linttest"
)

// Each analyzer runs over its testdata module; the fixtures pair every
// true-positive (`// want`) with negative cases and exercise the
// //lint:ignore suppression path (statement-level, function-level, and the
// malformed reasonless directive).

func TestStreamclose(t *testing.T) {
	linttest.Run(t, analyzers.Streamclose, "streamclose")
}

func TestLocksend(t *testing.T) {
	linttest.Run(t, analyzers.Locksend, "locksend")
}

func TestGoctx(t *testing.T) {
	linttest.Run(t, analyzers.Goctx, "goctx")
}

func TestErrdrop(t *testing.T) {
	linttest.Run(t, analyzers.Errdrop, "errdrop")
}

func TestBoundedchan(t *testing.T) {
	linttest.Run(t, analyzers.Boundedchan, "boundedchan")
}
