package analyzers

import (
	"go/ast"
	"go/types"

	"strata/internal/lint/analysis"
)

// Streamclose enforces the operator-shutdown contract: every operator run
// loop must close its output channel(s) on every return path, because
// downstream operators treat channel close as end-of-stream. A run method
// that can return without closing its outputs stalls the rest of the DAG
// forever (the downstream select never wakes).
//
// Contract shape: a method named "run" whose receiver struct declares
// channel-typed fields named "out..." (chan T, or []chan T for multi-output
// operators) must close each of them in a defer — either
//
//	defer close(m.out)
//
// or, for slice-of-channel outputs, a deferred closure that ranges over the
// field and closes every element:
//
//	defer func() { for _, ch := range s.outs { close(ch) } }()
//
// A deferred call to closeGated — the stream package's quiesce-aware close
// wrapper, which unconditionally closes its channel argument after waiting
// out any checkpoint pause — satisfies the contract the same way:
//
//	defer closeGated(m.g, m.out)
//
// Only a defer survives every return path (including panics unwound by
// recoverPanic), which is why in-line closes on the happy path do not
// satisfy the check.
var Streamclose = &analysis.Analyzer{
	Name: "streamclose",
	Doc:  "operator run loops must defer-close their output channels",
	Run:  runStreamclose,
}

func runStreamclose(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "run" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			checkRunMethod(pass, fn)
		}
	}
	return nil, nil
}

// outField is one output-channel field the receiver must close.
type outField struct {
	name    string
	isSlice bool
}

func checkRunMethod(pass *analysis.Pass, fn *ast.FuncDecl) {
	recvField := fn.Recv.List[0]
	st := receiverStruct(pass, recvField)
	if st == nil {
		return
	}
	var required []outField
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if len(f.Name()) < 3 || f.Name()[:3] != "out" {
			continue
		}
		switch u := f.Type().Underlying().(type) {
		case *types.Chan:
			if u.Dir() != types.RecvOnly {
				required = append(required, outField{name: f.Name()})
			}
		case *types.Slice:
			if ch, ok := u.Elem().Underlying().(*types.Chan); ok && ch.Dir() != types.RecvOnly {
				required = append(required, outField{name: f.Name(), isSlice: true})
			}
		}
	}
	if len(required) == 0 {
		return
	}

	var recvObj types.Object
	if len(recvField.Names) > 0 {
		recvObj = pass.ObjectOf(recvField.Names[0])
	}
	closed := make(map[string]bool)
	if recvObj != nil {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			collectDeferredCloses(pass, d, recvObj, closed)
			return true
		})
	}
	for _, f := range required {
		if closed[f.name] {
			continue
		}
		recvName := "receiver"
		if recvObj != nil {
			recvName = recvObj.Name()
		}
		if f.isSlice {
			pass.Reportf(fn.Name.Pos(),
				"operator run loop never closes its output channels %s.%s; defer a loop that closes each element",
				recvName, f.name)
		} else {
			pass.Reportf(fn.Name.Pos(),
				"operator run loop never closes its output channel %s.%s on all return paths; add `defer close(%s.%s)`",
				recvName, f.name, recvName, f.name)
		}
	}
}

// receiverStruct resolves the receiver's underlying struct type (through
// pointers and generic instantiation).
func receiverStruct(pass *analysis.Pass, recv *ast.Field) *types.Struct {
	t := pass.TypeOf(recv.Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// collectDeferredCloses records which receiver out-fields the deferred call
// d closes, either directly (defer close(m.out)) or through a closure that
// ranges over a slice field closing each element.
func collectDeferredCloses(pass *analysis.Pass, d *ast.DeferStmt, recvObj types.Object, closed map[string]bool) {
	if isBuiltinClose(pass.TypesInfo, d.Call) && len(d.Call.Args) == 1 {
		if name, ok := receiverField(pass, d.Call.Args[0], recvObj); ok {
			closed[name] = true
		}
		return
	}
	// closeGated(g, ch): the quiesce-aware close wrapper. It always closes
	// its channel argument, so any receiver out-field passed to it counts.
	if fnIdent(d.Call.Fun) == "closeGated" {
		for _, a := range d.Call.Args {
			if name, ok := receiverField(pass, a, recvObj); ok {
				closed[name] = true
			}
		}
		return
	}
	lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	// Map range-value variables to the receiver slice field they iterate,
	// then credit close(v) calls on those variables.
	rangeVars := make(map[types.Object]string)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		field, ok := receiverField(pass, rs.X, recvObj)
		if !ok {
			return true
		}
		if v, ok := rs.Value.(*ast.Ident); ok {
			if obj := pass.ObjectOf(v); obj != nil {
				rangeVars[obj] = field
			}
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinClose(pass.TypesInfo, call) || len(call.Args) != 1 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if name, ok := receiverField(pass, arg, recvObj); ok {
			closed[name] = true
			return true
		}
		if id, ok := arg.(*ast.Ident); ok {
			if field, ok := rangeVars[pass.ObjectOf(id)]; ok {
				closed[field] = true
			}
		}
		return true
	})
}

// fnIdent returns the called function's bare name, unwrapping parens and an
// explicit generic instantiation (closeGated[T](...)).
func fnIdent(e ast.Expr) string {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// receiverField matches e against `recv.field` and returns the field name.
func receiverField(pass *analysis.Pass, e ast.Expr, recvObj types.Object) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.ObjectOf(id) != recvObj {
		return "", false
	}
	return sel.Sel.Name, true
}
