package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"strata/internal/lint/analysis"
)

// SnapState is an object fact attached to every package-level named struct
// type: which of its fields are mutated at runtime (written through a
// method receiver, outside Snapshot/Restore), whether the type carries a
// Snapshot/Restore pair, and which fields that pair references. Importing
// packages use it to judge fields whose type is defined elsewhere — a
// struct field with mutable state of its own must be captured by the
// embedding operator's snapshot even though the mutation happens three
// packages away.
type SnapState struct {
	Mutable     []string
	Covered     []string
	Snapshotter bool
}

// AFact marks SnapState as a fact type.
func (*SnapState) AFact() {}

// Snapshotgap enforces the crash-recovery contract from DESIGN.md §10: a
// type implementing the Snapshotter pair
//
//	Snapshot() ([]byte, error)
//	Restore([]byte) error
//
// must reference every mutable field of its receiver from that pair. A
// field the operator mutates at runtime but omits from its gob blob is the
// exact bug class that corrupts recovery — the query restarts, restores,
// and silently continues from partial state.
//
// "Mutable" is judged conservatively from the type's own method bodies
// (helpers that take the struct as an ordinary parameter are not
// followed):
//
//   - a field assigned, incremented, deleted-from, or address-taken
//     through the receiver (writes that reach the field's own memory:
//     writes behind a pointer-typed field mutate shared state, which the
//     engine deliberately does not snapshot — telemetry handles, guards)
//   - a value-typed field whose own type is known to carry mutable state
//     (same package, or via an imported SnapState fact) and which receives
//     a pointer-receiver method call
//   - a value-typed sync/atomic field passed a mutating call
//     (Store/Add/Swap/CompareAndSwap)
//
// Channel- and func-typed fields are wiring, not state, and are exempt. A
// field that is mutable by this definition but deliberately excluded from
// the blob (rebuilt on restore, for example) takes
// //lint:ignore snapshotgap <why it is safe> on the Snapshot declaration.
var Snapshotgap = &analysis.Analyzer{
	Name:      "snapshotgap",
	Doc:       "Snapshot/Restore pairs must reference every mutable field of their receiver",
	FactTypes: []analysis.Fact{(*SnapState)(nil)},
	Run:       runSnapshotgap,
}

// atomicMutators are the sync/atomic methods that change their receiver.
var atomicMutators = map[string]bool{
	"Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

// fieldCall is a deferred judgement: a pointer-receiver method call on a
// value-typed struct field, whose mutating-ness depends on the field
// type's own mutability (possibly a fact from another package).
type fieldCall struct {
	field  string
	ft     *types.Named
	method string
}

// snapType is the per-type working state of one run.
type snapType struct {
	tn      *types.TypeName
	st      *types.Struct
	mutable map[string]bool
	covered map[string]bool
	calls   []fieldCall
	// snapPos anchors diagnostics: the Snapshot declaration if the pair is
	// defined in this package, else the type name (promoted pair).
	snapPos token.Pos
	hasPair bool
}

func runSnapshotgap(pass *analysis.Pass) (any, error) {
	byName := make(map[*types.TypeName]*snapType)
	scope := pass.Pkg.Scope()
	var order []*snapType
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		t := &snapType{
			tn: tn, st: st,
			mutable: make(map[string]bool),
			covered: make(map[string]bool),
			snapPos: tn.Pos(),
			hasPair: hasSnapshotterPair(tn.Type()),
		}
		byName[tn] = t
		order = append(order, t)
	}

	// Walk every method body, crediting writes (outside Snapshot/Restore)
	// and snapshot references (inside them) to the receiver's type.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			recvType := pass.TypeOf(fn.Recv.List[0].Type)
			named := namedOf(recvType)
			if named == nil {
				continue
			}
			t := byName[named.Obj()]
			if t == nil {
				continue
			}
			var recvObj types.Object
			if names := fn.Recv.List[0].Names; len(names) > 0 {
				recvObj = pass.ObjectOf(names[0])
			}
			if recvObj == nil {
				continue
			}
			switch fn.Name.Name {
			case "Snapshot", "Restore":
				if fn.Name.Name == "Snapshot" {
					t.snapPos = fn.Name.Pos()
				}
				collectFieldRefs(pass, fn.Body, recvObj, t)
			default:
				collectFieldWrites(pass, fn.Body, recvObj, t)
			}
		}
	}

	// Resolve the deferred pointer-method-call judgements to a fixpoint:
	// a local field type's mutability can itself depend on such calls.
	for changed := true; changed; {
		changed = false
		for _, t := range order {
			for _, c := range t.calls {
				if t.mutable[c.field] {
					continue
				}
				if typeHasMutableState(pass, byName, c.ft, c.method) {
					t.mutable[c.field] = true
					changed = true
				}
			}
		}
	}

	// Report gaps for snapshotter types, and export the fact for all.
	for _, t := range order {
		if t.hasPair {
			var missing []string
			for f := range t.mutable {
				if !t.covered[f] {
					missing = append(missing, f)
				}
			}
			sort.Strings(missing)
			for _, f := range missing {
				pass.Reportf(t.snapPos,
					"Snapshot/Restore of %s never reference mutable field %s; its state is silently lost on crash recovery (the gob blob omits it)",
					t.tn.Name(), f)
			}
		}
		pass.ExportObjectFact(t.tn, &SnapState{
			Mutable:     sortedKeys(t.mutable),
			Covered:     sortedKeys(t.covered),
			Snapshotter: t.hasPair,
		})
	}
	return nil, nil
}

// collectFieldWrites records which receiver fields fn's body mutates.
func collectFieldWrites(pass *analysis.Pass, body *ast.BlockStmt, recvObj types.Object, t *snapType) {
	mark := func(e ast.Expr) {
		if f, ok := recvFieldTarget(pass, e, recvObj, t.st); ok && isStateField(t.st, f) {
			t.mutable[f] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
					mark(n.Args[0])
				}
			}
			// recv.f.M(...): a pointer-receiver method call on a value-typed
			// struct field — mutating if f's type has mutable state of its
			// own. Defer the judgement; the answer may be a fact.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(fsel.X).(*ast.Ident); ok && pass.ObjectOf(id) == recvObj {
						ft := pass.TypeOf(fsel)
						named := fieldValueStruct(ft)
						if named != nil && ptrReceiverMethod(pass, sel.Sel) && isStateField(t.st, fsel.Sel.Name) {
							t.calls = append(t.calls, fieldCall{field: fsel.Sel.Name, ft: named, method: sel.Sel.Name})
						}
					}
				}
			}
		}
		return true
	})
}

// collectFieldRefs records every receiver field fn's body mentions at all —
// the Snapshot/Restore coverage set.
func collectFieldRefs(pass *analysis.Pass, body *ast.BlockStmt, recvObj types.Object, t *snapType) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.ObjectOf(id) == recvObj {
			t.covered[directFieldName(pass, sel)] = true
		}
		return true
	})
}

// recvFieldTarget resolves a write target rooted at the receiver to the
// receiver's own field whose memory the write reaches. Writes that cross a
// pointer-typed field boundary (recv.ptr.x = v) mutate shared state, not
// the receiver's, and resolve to nothing. Map and slice elements count:
// their contents are logically owned by the field.
func recvFieldTarget(pass *analysis.Pass, e ast.Expr, recvObj types.Object, st *types.Struct) (string, bool) {
	e = ast.Unparen(e)
	var sels []*ast.SelectorExpr
	depth := 0
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			sels = append(sels, x)
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			goto done
		}
		depth++
	}
done:
	id, ok := e.(*ast.Ident)
	if !ok || pass.ObjectOf(id) != recvObj || len(sels) == 0 {
		return "", false
	}
	root := sels[len(sels)-1] // the recv.f selector
	name := directFieldName(pass, root)
	if depth == 1 {
		return name, true // direct write/address of the field itself
	}
	if ft := pass.TypeOf(root); ft != nil {
		if _, isPtr := ft.Underlying().(*types.Pointer); isPtr {
			return "", false
		}
	}
	return name, true
}

// directFieldName maps a recv.x selection to the receiver struct's own
// field: for a field promoted from an embedded struct it returns the
// embedded field's name, so writes and coverage are matched against the
// fields the struct actually declares.
func directFieldName(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && len(s.Index()) > 0 {
		if named := namedOf(s.Recv()); named != nil {
			if st, ok := named.Underlying().(*types.Struct); ok {
				return st.Field(s.Index()[0]).Name()
			}
		}
	}
	return sel.Sel.Name
}

// typeHasMutableState reports whether a pointer-receiver call to method on
// a value of named type ft mutates it: sync/atomic mutators by name, local
// types by their computed write set, imported types by their SnapState
// fact.
func typeHasMutableState(pass *analysis.Pass, byName map[*types.TypeName]*snapType, ft *types.Named, method string) bool {
	obj := ft.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() == "sync/atomic" {
		return atomicMutators[method]
	}
	if obj.Pkg() == pass.Pkg {
		t := byName[obj]
		return t != nil && len(t.mutable) > 0
	}
	var ss SnapState
	return pass.ImportObjectFact(obj, &ss) && len(ss.Mutable) > 0
}

// isStateField reports whether the named field exists on st and is state
// rather than wiring (channels and funcs are exempt).
func isStateField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		switch f.Type().Underlying().(type) {
		case *types.Chan, *types.Signature:
			return false
		}
		return true
	}
	return false
}

// fieldValueStruct returns t as a named struct held by value, or nil for
// pointers (whose pointees are shared state, not receiver memory) and
// non-struct types.
func fieldValueStruct(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return nil
	}
	named := namedOf(t)
	if named == nil {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// ptrReceiverMethod reports whether sel resolves to a method with a
// pointer receiver.
func ptrReceiverMethod(pass *analysis.Pass, sel *ast.Ident) bool {
	fn, ok := pass.ObjectOf(sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// hasSnapshotterPair reports whether *T's method set carries the exact
// Snapshotter shape: Snapshot() ([]byte, error) and Restore([]byte) error.
// The check is structural — the interface may be declared in any package.
func hasSnapshotterPair(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	var snapOK, restoreOK bool
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch fn.Name() {
		case "Snapshot":
			snapOK = sig.Params().Len() == 0 && sig.Results().Len() == 2 &&
				isByteSlice(sig.Results().At(0).Type()) && isErrorType(sig.Results().At(1).Type())
		case "Restore":
			restoreOK = sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
				isByteSlice(sig.Params().At(0).Type()) && isErrorType(sig.Results().At(0).Type())
		}
	}
	return snapOK && restoreOK
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// namedOf unwraps pointers to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
