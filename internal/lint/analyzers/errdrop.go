package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"strata/internal/lint/analysis"
)

// Errdrop flags statements that call a Close/Flush/Sync method (any case)
// returning an error and silently discard the result. On the kvstore WAL
// and SSTable paths a dropped Close error is dropped durability: the last
// buffered writes may never have reached the disk and nobody finds out.
//
// Scope is deliberately narrower than errcheck:
//
//   - only expression statements are flagged — `defer f.Close()` on a
//     read-side handle is accepted teardown idiom, and `_ = f.Close()` is
//     an explicit, reviewable decision to discard
//   - only methods named Close/close/Flush/flush/Sync/sync whose results
//     include an error
//   - _test.go files are exempt
//
// Since stratalint v2 errdrop is fact-powered: it requires errfree and
// skips call sites whose callee carries a NeverFails fact — a Close that
// provably always returns nil has no error to drop, even when the callee
// is defined three packages away.
var Errdrop = &analysis.Analyzer{
	Name:      "errdrop",
	Doc:       "Close/Flush/Sync errors must be handled or explicitly discarded",
	Requires:  []*analysis.Analyzer{Errfree},
	FactTypes: []analysis.Fact{(*NeverFails)(nil)},
	Run:       runErrdrop,
}

func runErrdrop(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isDropTarget(fn.Name()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			// A callee proven (by errfree, possibly in another package) to
			// always return nil has no error worth handling.
			if pass.ImportObjectFact(fn, &NeverFails{}) {
				return true
			}
			target := fn.Name()
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				target = exprText(sel.X) + "." + fn.Name()
			}
			pass.Reportf(stmt.Pos(),
				"error from %s is discarded; handle it or assign to _ explicitly", target)
			return true
		})
	}
	return nil, nil
}

func isDropTarget(name string) bool {
	switch strings.ToLower(name) {
	case "close", "flush", "sync":
		return true
	}
	return false
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
