package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"strata/internal/lint/analysis"
)

// Errdrop flags statements that call a Close/Flush/Sync method (any case)
// returning an error and silently discard the result. On the kvstore WAL
// and SSTable paths a dropped Close error is dropped durability: the last
// buffered writes may never have reached the disk and nobody finds out.
//
// Scope is deliberately narrower than errcheck:
//
//   - only expression statements are flagged — `defer f.Close()` on a
//     read-side handle is accepted teardown idiom, and `_ = f.Close()` is
//     an explicit, reviewable decision to discard
//   - only methods named Close/close/Flush/flush/Sync/sync whose results
//     include an error
//   - _test.go files are exempt
var Errdrop = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "Close/Flush/Sync errors must be handled or explicitly discarded",
	Run:  runErrdrop,
}

func runErrdrop(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isDropTarget(fn.Name()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			target := fn.Name()
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				target = exprText(sel.X) + "." + fn.Name()
			}
			pass.Reportf(stmt.Pos(),
				"error from %s is discarded; handle it or assign to _ explicitly", target)
			return true
		})
	}
	return nil
}

func isDropTarget(name string) bool {
	switch strings.ToLower(name) {
	case "close", "flush", "sync":
		return true
	}
	return false
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
