package analyzers

import (
	"go/ast"
	"go/types"

	"strata/internal/lint/analysis"
)

// NeverFails is an object fact attached to a function or method whose
// error results are provably always nil: every return statement is
// explicit and returns the literal nil in every error-typed result
// position. Errdrop imports it to stop flagging call sites that discard
// an error that cannot exist — including across package boundaries, where
// the callee's body is not otherwise visible to the analyzer.
type NeverFails struct{}

// AFact marks NeverFails as a fact type.
func (*NeverFails) AFact() {}

// Errfree is a fact producer: it reports nothing itself, but records which
// of the package's functions can never return a non-nil error. The proof
// is deliberately conservative — named result parameters (assignable by
// deferred functions) and naked returns disqualify a function — so a
// NeverFails fact is trustworthy, at the cost of missing some always-nil
// functions.
var Errfree = &analysis.Analyzer{
	Name:      "errfree",
	Doc:       "records functions that provably never return a non-nil error (fact producer for errdrop)",
	FactTypes: []analysis.Fact{(*NeverFails)(nil)},
	Run:       runErrfree,
}

func runErrfree(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.ObjectOf(fn.Name).(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || !neverFails(pass, fn, sig) {
				continue
			}
			pass.ExportObjectFact(obj, &NeverFails{})
		}
	}
	return nil, nil
}

// neverFails reports whether fn provably returns nil in every error-typed
// result position on every path.
func neverFails(pass *analysis.Pass, fn *ast.FuncDecl, sig *types.Signature) bool {
	res := sig.Results()
	errIdx := make(map[int]bool)
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			errIdx[i] = true
		}
		// A named result can be assigned anywhere, including by a deferred
		// closure after the return statement runs; proving it stays nil
		// needs flow analysis this check deliberately avoids.
		if res.At(i).Name() != "" {
			return false
		}
	}
	if len(errIdx) == 0 {
		return false // nothing to prove
	}
	proven := true
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if !proven {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested function's returns are its own
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) != res.Len() {
			// Naked return, or a single call expression fanned out into
			// multiple results: give up rather than chase it.
			proven = false
			return false
		}
		for i := range ret.Results {
			if !errIdx[i] {
				continue
			}
			tv, ok := pass.TypesInfo.Types[ast.Unparen(ret.Results[i])]
			if !ok || !tv.IsNil() {
				proven = false
				return false
			}
		}
		return true
	})
	return proven
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
