// Package analyzers holds the STRATA contract checks run by strata-lint.
//
// Each analyzer encodes one invariant the engine's concurrency model relies
// on; see DESIGN.md ("Static contracts") for the rationale behind each and
// for how to suppress a deliberate violation with //lint:ignore.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"strata/internal/lint/analysis"
)

// All is the full strata-lint suite, in the order findings are attributed.
// Errfree is not listed: it reports nothing and runs implicitly as a
// Requires dependency of Errdrop.
var All = []*analysis.Analyzer{
	Streamclose, Locksend, Goctx, Errdrop, Boundedchan,
	Snapshotgap, Metricname, Atomicmix,
}

// calleeFunc resolves the called function/method object of call, or nil for
// builtins, type conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// calleeFullName returns the resolved callee's FullName (for example
// "(*sync.Mutex).Lock" or "time.Sleep"), or "".
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// exprText renders a selector/ident chain ("rc.mu", "s.conn.done") for
// diagnostics and for keying mutexes. Unrenderable shapes degrade to "?".
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	default:
		return "?"
	}
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// isChan reports whether t's core type is a channel (following named types).
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isBuiltinClose reports whether call invokes the builtin close.
func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}
