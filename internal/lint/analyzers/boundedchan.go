package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"

	"strata/internal/lint/analysis"
)

// Boundedchan flags data channels created without an explicit non-zero
// capacity. An unbuffered `make(chan T)` is a rendezvous point: the sender
// blocks until a receiver arrives, the edge holds no queue, and so neither
// the shed gates nor the queue-depth metrics (strata_stream_queue_len /
// strata_overload_pressure) can see or relieve pressure on it. Every
// data-plane edge in STRATA must carry a sized buffer so overload shows up
// as measurable occupancy instead of a silently stalled goroutine.
//
// Pure signal channels (element type struct{}) are exempt: they carry no
// data, and unbuffered close/notify semantics are exactly what they are for.
// Test files are exempt. A deliberate unbuffered data channel (for example a
// handshake that must rendezvous) can be annotated:
//
//	//lint:ignore boundedchan rendezvous handshake, never carries load
var Boundedchan = &analysis.Analyzer{
	Name: "boundedchan",
	Doc:  "data channels need an explicit non-zero capacity; unbuffered edges are invisible to backpressure accounting",
	Run:  runBoundedchan,
}

func runBoundedchan(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinMake(pass.TypesInfo, call) || len(call.Args) == 0 {
				return true
			}
			ch, ok := pass.TypeOf(call.Args[0]).Underlying().(*types.Chan)
			if !ok {
				return true
			}
			if isEmptyStruct(ch.Elem()) {
				return true // signal channel: rendezvous is the point
			}
			switch {
			case len(call.Args) == 1:
				pass.Reportf(call.Pos(),
					"unbuffered data channel make(chan %s): give the edge an explicit capacity so backpressure is measurable, or annotate //lint:ignore boundedchan <why>",
					ch.Elem())
			case isConstZero(pass.TypesInfo, call.Args[1]):
				pass.Reportf(call.Pos(),
					"zero-capacity data channel make(chan %s, 0): give the edge a non-zero capacity so backpressure is measurable, or annotate //lint:ignore boundedchan <why>",
					ch.Elem())
			}
			return true
		})
	}
	return nil, nil
}

// isBuiltinMake reports whether call invokes the builtin make.
func isBuiltinMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// isEmptyStruct reports whether t's core type is struct{}.
func isEmptyStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isConstZero reports whether e evaluates to the integer constant 0.
func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v == 0
}
