package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"strata/internal/lint/analysis"
)

// AtomicUse is an object fact attached to a struct field that some package
// accesses through the sync/atomic package-level functions (its address is
// passed to atomic.AddInt64, atomic.LoadUint32, ...). Any plain load or
// store of such a field — in this package or an importer — is a data race
// the race detector only catches if both sides happen to run under -race.
type AtomicUse struct{}

// AFact marks AtomicUse as a fact type.
func (*AtomicUse) AFact() {}

// PlainUse is the mirror fact: a struct field read or written without
// sync/atomic somewhere in this package. Exported so an importer that
// atomically accesses the same field can be flagged even when the plain
// access came first in dependency order.
type PlainUse struct{}

// AFact marks PlainUse as a fact type.
func (*PlainUse) AFact() {}

// Atomicmix flags struct fields accessed both through sync/atomic
// functions and through plain loads or stores. Mixing the two voids the
// atomicity guarantee entirely — the plain access races with every atomic
// one. The repository convention (DESIGN.md §7) is typed atomics
// (atomic.Int64, atomic.Bool), which make the mix unrepresentable; this
// analyzer guards the remaining address-based uses and, via facts, catches
// the cross-package split where one package publishes a counter field and
// another reads it without atomic.
var Atomicmix = &analysis.Analyzer{
	Name:      "atomicmix",
	Doc:       "struct fields must not mix sync/atomic access with plain loads and stores",
	FactTypes: []analysis.Fact{(*AtomicUse)(nil), (*PlainUse)(nil)},
	Run:       runAtomicmix,
}

func runAtomicmix(pass *analysis.Pass) (any, error) {
	atomicHere := make(map[*types.Var]ast.Node) // first atomic site
	plainHere := make(map[*types.Var]ast.Node)  // first plain site
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			// &x.f passed to a sync/atomic function: atomic access.
			if call, ok := n.(*ast.CallExpr); ok && isAtomicCall(pass, call) {
				for _, arg := range call.Args {
					if f := addressedField(pass, arg); f != nil {
						if _, seen := atomicHere[f]; !seen {
							atomicHere[f] = arg
						}
					}
				}
				return false // don't also count the selector as a plain use
			}
			// Any other selector mention of a struct field: plain access.
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if f := selectedField(pass, sel); f != nil {
					if _, seen := plainHere[f]; !seen {
						plainHere[f] = sel
					}
				}
			}
			return true
		})
	}

	for f, site := range plainHere {
		if _, both := atomicHere[f]; both {
			pass.Reportf(site.Pos(),
				"field %s is accessed with sync/atomic but read/written plainly here; mixing the two races against every atomic access", f.Name())
		} else if f.Pkg() != nil && f.Pkg() != pass.Pkg && pass.ImportObjectFact(f, &AtomicUse{}) {
			pass.Reportf(site.Pos(),
				"field %s is accessed with sync/atomic in %s but read/written plainly here; mixing the two races against every atomic access", f.Name(), f.Pkg().Path())
		}
	}
	// The split can also arrive in the other order: the plain access lives
	// in a dependency, the atomic one here.
	for f, site := range atomicHere {
		if f.Pkg() == nil || f.Pkg() == pass.Pkg {
			continue
		}
		if _, both := plainHere[f]; both {
			continue // same-package mix already reported above
		}
		if pass.ImportObjectFact(f, &PlainUse{}) {
			pass.Reportf(site.Pos(),
				"field %s is read/written plainly in %s but accessed with sync/atomic here; mixing the two races against every atomic access", f.Name(), f.Pkg().Path())
		}
	}

	// Export what this package did with its own fields, for importers.
	for f := range atomicHere {
		if f.Pkg() == pass.Pkg {
			pass.ExportObjectFact(f, &AtomicUse{})
		}
	}
	for f := range plainHere {
		if f.Pkg() == pass.Pkg {
			pass.ExportObjectFact(f, &PlainUse{})
		}
	}
	return nil, nil
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// addressedField resolves &expr.f to the struct field f, or nil.
func addressedField(pass *analysis.Pass, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(pass, sel)
}

// selectedField resolves expr.f to a struct field object, or nil when the
// selection is not a field (method, package member, ...). Fields of
// typed-atomic structs (atomic.Int64 and friends) are skipped: the typed
// API is exactly the sanctioned access path.
func selectedField(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	obj, ok := pass.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !obj.IsField() {
		return nil
	}
	if named := namedOf(obj.Type()); named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync/atomic" {
		return nil
	}
	return obj
}
