module locksend

go 1.22
