// Test fixtures for the locksend analyzer: no channel operations or
// blocking waits while a mutex is held.
package a

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func badSend(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 // want `channel send on b\.ch while b\.mu is held`
}

func badRecv(b *box) {
	b.mu.Lock()
	<-b.ch // want `channel receive from b\.ch while b\.mu is held`
	b.mu.Unlock()
}

func badWait(b *box, wg *sync.WaitGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while b\.mu is held`
}

func badSleep(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while b\.mu is held`
	b.mu.Unlock()
}

func badSelect(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `blocking select \(no default\) while b\.mu is held`
	case b.ch <- 1:
	case v := <-b.ch:
		_ = v
	}
}

func badRange(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want `range over channel b\.ch while b\.mu is held`
		_ = v
	}
}

type rwbox struct {
	mu sync.RWMutex
	ch chan int
}

func badReadLocked(r *rwbox) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	<-r.ch // want `channel receive from r\.ch while r\.mu is held`
}

// goodUnlockFirst releases before the send: the standard collect-under-lock,
// deliver-after-release pattern.
func goodUnlockFirst(b *box) {
	b.mu.Lock()
	v := 1
	b.mu.Unlock()
	b.ch <- v
}

// goodNonBlockingSelect cannot park: the default clause makes the channel
// operation a try-send.
func goodNonBlockingSelect(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- 1:
	default:
	}
}

// goodGoroutineScope: the literal's body runs on another goroutine, outside
// the lexically-enclosing critical section.
func goodGoroutineScope(b *box, done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		select {
		case b.ch <- 1:
		case <-done:
		}
	}()
}

// goodCondWait: sync.Cond.Wait requires the caller to hold the lock; it is
// not a violation.
func goodCondWait(mu *sync.Mutex, c *sync.Cond) {
	mu.Lock()
	for {
		c.Wait()
		break
	}
	mu.Unlock()
}

// ignoredDeliver mirrors the pubsub Block-policy delivery: the violation is
// deliberate and suppressed on the statement.
func ignoredDeliver(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore locksend deliberate: close must not race the blocked send
	b.ch <- 1
}

// ignoredWholeFunc demonstrates function-level suppression from the doc
// comment.
//
//lint:ignore locksend fixture for doc-comment suppression
func ignoredWholeFunc(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1
	<-b.ch
}

// unignoredTrailing proves a reasonless directive suppresses nothing: the
// directive is malformed, so the finding stands.
func unignoredTrailing(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore locksend
	b.ch <- 2 // want `channel send on b\.ch while b\.mu is held`
}
