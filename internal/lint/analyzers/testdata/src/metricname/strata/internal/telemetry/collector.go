// Package telemetry sits at a path whose suffix matches the reserved
// strata_trace_ prefix's owner (strata/internal/telemetry), so its
// emissions of that series are allowed — the ownership check matches on
// the path suffix, which covers both the real package and fixtures like
// this one.
package telemetry

import real "metricname/telemetry"

const spansTotal = "strata_trace_spans_total"

// Emit publishes a reserved-prefix series from its owning package: no
// finding expected.
func Emit(w *real.Writer) {
	w.Counter(spansTotal, "sampled spans recorded", 1)
}
