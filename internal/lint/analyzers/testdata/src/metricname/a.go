// Test fixtures for the metricname analyzer: telemetry metric names must
// be constant, strata_-prefixed snake_case, and each series must have
// exactly one owner and one help string.
package a

import (
	"fmt"

	"metricname/owner"
	"metricname/telemetry"
)

const (
	opLatency   = "strata_op_latency_seconds"
	queueDepth  = "strata_queue_depth"
	legacyGauge = "engine_queue_depth"
)

func good(w *telemetry.Writer) {
	w.Counter(opLatency, "operator latency", 0.25)
	w.Gauge(queueDepth, "queue depth", 17)
	// Inline literals are constants too.
	w.Histogram("strata_batch_size", "batch size distribution", 128)
	// go_ is the sanctioned prefix for the runtime-stats mirror.
	w.Gauge("go_goroutines", "live goroutines", 42)
	// Same name, same help: one owner registering from two code paths.
	w.Gauge(queueDepth, "queue depth", 18)
	owner.Emit(w, 1)
}

func bad(w *telemetry.Writer, op string, shard int) {
	w.Counter(fmt.Sprintf("strata_%s_total", op), "per-op count", 1) // want `metric name must be a compile-time string constant`
	name := "strata_shard_" + fmt.Sprint(shard)
	w.Gauge(name, "per-shard depth", 3)                   // want `metric name must be a compile-time string constant`
	w.Counter("strata_BadName_total", "mixed case", 1)    // want `is not snake_case`
	w.Gauge(legacyGauge, "unprefixed legacy series", 9)   // want `lacks the strata_ prefix`
	w.Gauge(queueDepth, "how deep the queue is", 17)      // want `re-registered with different help text`
	w.Counter("strata_owner_widgets_total", "widgets", 1) // want `already emitted by metricname/owner`
	w.Counter("strata_trace_homemade_total", "spans", 1)  // want `reserved prefix strata_trace_`
	w.Gauge("strata_flightrec_rings", "rings", 1)         // want `reserved prefix strata_flightrec_`
}

func grandfathered(w *telemetry.Writer) {
	//lint:ignore metricname dashboard series predates the prefix convention; renaming breaks alerts
	w.Gauge("engine_uptime_seconds", "legacy uptime series", 1)
}
