module metricname

go 1.22
