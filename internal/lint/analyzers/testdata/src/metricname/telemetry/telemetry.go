// Package telemetry mirrors the real telemetry Writer surface: the
// analyzer matches it structurally (package named telemetry, type named
// Writer), so this fake is held to the same contract as the real one.
package telemetry

// Label is one name=value dimension.
type Label struct{ Name, Value string }

// Writer receives metric samples.
type Writer struct{}

func (w *Writer) Counter(name, help string, value float64, labels ...Label)   {}
func (w *Writer) Gauge(name, help string, value float64, labels ...Label)     {}
func (w *Writer) Histogram(name, help string, value float64, labels ...Label) {}
