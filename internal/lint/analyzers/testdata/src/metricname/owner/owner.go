// Package owner is the first registrant of strata_owner_widgets_total. Its
// MetricNames package fact travels to importers, where re-emitting the
// same series is flagged as a duplicate owner.
package owner

import "metricname/telemetry"

const widgetsTotal = "strata_owner_widgets_total"

// Emit publishes this package's one metric.
func Emit(w *telemetry.Writer, n float64) {
	w.Counter(widgetsTotal, "widgets processed", n)
}
