module goctx

go 1.22
