// Test fixtures for the goctx analyzer: spawned goroutines need a
// reachable stop signal.
package a

import (
	"context"
	"sync/atomic"
	"time"
)

func work() {}

func badForever() {
	go func() { // want `goroutine loops forever with no reachable stop signal`
		for {
			work()
		}
	}()
}

func badSleepLoop() {
	go func() { // want `goroutine loops forever with no reachable stop signal`
		for {
			time.Sleep(time.Second)
			work()
		}
	}()
}

// badInnerBreak: the break belongs to the switch, not the loop — the
// goroutine still never exits.
func badInnerBreak(mode int) {
	go func() { // want `goroutine loops forever with no reachable stop signal`
		for {
			switch mode {
			case 1:
				break
			}
			work()
		}
	}()
}

// badNestedSignal: the receive lives in a *nested* goroutine; it does not
// stop the outer one.
func badNestedSignal(done chan struct{}) {
	go func() { // want `goroutine loops forever with no reachable stop signal`
		for {
			go func() {
				<-done
			}()
			work()
		}
	}()
}

// goodDoneChannel: select with a quit-channel receive.
func goodDoneChannel(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// goodCtx: the loop consults a context.
func goodCtx(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

// goodRange: ranging over a channel ends when the producer closes it.
func goodRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// goodQuitFlag: a closed-over atomic flag with a conditional exit.
func goodQuitFlag(stop *atomic.Bool) {
	go func() {
		for {
			if stop.Load() {
				return
			}
			work()
		}
	}()
}

// goodLoopBreak: a direct break out of the loop is an exit path.
func goodLoopBreak(n *atomic.Int64) {
	go func() {
		for {
			if n.Add(1) > 100 {
				break
			}
		}
	}()
}

// goodBounded: a conditional loop has its own termination; only `for {`
// loops are in scope.
func goodBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

// goodNoLoop: straight-line goroutines finish on their own.
func goodNoLoop(ch chan int) {
	go func() {
		work()
		ch <- 1
	}()
}

// ignoredForever: process-lifetime pumps are opted out explicitly.
func ignoredForever() {
	//lint:ignore goctx metrics pump intentionally lives for the process lifetime
	go func() {
		for {
			work()
		}
	}()
}
