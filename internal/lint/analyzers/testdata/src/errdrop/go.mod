module errdrop

go 1.22
