// Test fixtures for the errdrop analyzer: Close/Flush/Sync errors must be
// handled or explicitly discarded.
package a

import "os"

type handle struct{}

func (h *handle) Close() error { return nil }
func (h *handle) Flush() error { return nil }
func (h *handle) Sync() error  { return nil }

// wal mirrors the kvstore's unexported teardown methods.
type wal struct{}

func (w *wal) close() error { return nil }

// silent has a Close with no error result: nothing to drop.
type silent struct{}

func (s *silent) Close() {}

func bad(h *handle, w *wal) {
	h.Close() // want `error from h\.Close is discarded`
	h.Flush() // want `error from h\.Flush is discarded`
	h.Sync()  // want `error from h\.Sync is discarded`
	w.close() // want `error from w\.close is discarded`
}

func badFile(f *os.File) {
	f.Close() // want `error from f\.Close is discarded`
}

func good(h *handle, f *os.File) error {
	if err := h.Close(); err != nil {
		return err
	}
	// Explicit discard is an auditable decision, not a drop.
	_ = h.Flush()
	// Deferred teardown of read-side handles is accepted idiom.
	defer f.Close()
	// The builtin close is not an error-returning Close method.
	ch := make(chan int)
	close(ch)
	// Close without an error result has nothing to report.
	var s silent
	s.Close()
	return h.Sync()
}

// ignoredClose: suppression is honored for deliberate best-effort closes.
func ignoredClose(h *handle) {
	//lint:ignore errdrop best-effort close on an error path
	h.Close()
}
