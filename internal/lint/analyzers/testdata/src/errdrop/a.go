// Test fixtures for the errdrop analyzer: Close/Flush/Sync errors must be
// handled or explicitly discarded — unless the callee provably never
// returns one (the errfree NeverFails fact).
package a

import (
	"errors"
	"os"

	"errdrop/nofail"
)

type handle struct{}

func (h *handle) Close() error { return errors.New("close failed") }
func (h *handle) Flush() error { return errors.New("flush failed") }
func (h *handle) Sync() error  { return errors.New("sync failed") }

// wal mirrors the kvstore's unexported teardown methods.
type wal struct{}

func (w *wal) close() error { return errors.New("wal close failed") }

// silent has a Close with no error result: nothing to drop.
type silent struct{}

func (s *silent) Close() {}

// quiet's Close returns the literal nil on every path — errfree exports a
// NeverFails fact for it, and errdrop has nothing to flag.
type quiet struct{}

func (q *quiet) Close() error { return nil }

// flaky has a named error result: a deferred closure could assign it after
// the return, so errfree refuses to prove it and errdrop still flags calls.
type flaky struct{}

func (f *flaky) Close() (err error) { return nil }

func bad(h *handle, w *wal, f *flaky) {
	h.Close() // want `error from h\.Close is discarded`
	h.Flush() // want `error from h\.Flush is discarded`
	h.Sync()  // want `error from h\.Sync is discarded`
	w.close() // want `error from w\.close is discarded`
	f.Close() // want `error from f\.Close is discarded`
}

func badFile(f *os.File) {
	f.Close() // want `error from f\.Close is discarded`
}

func good(h *handle, f *os.File) error {
	if err := h.Close(); err != nil {
		return err
	}
	// Explicit discard is an auditable decision, not a drop.
	_ = h.Flush()
	// Deferred teardown of read-side handles is accepted idiom.
	defer f.Close()
	// The builtin close is not an error-returning Close method.
	ch := make(chan int)
	close(ch)
	// Close without an error result has nothing to report.
	var s silent
	s.Close()
	return h.Sync()
}

// errorFree: callees proven to always return nil carry no error worth
// handling — same-package via the local fact, cross-package via the
// gob-round-tripped fact exported when the nofail package was analyzed.
func errorFree(q *quiet, s *nofail.Sink) {
	q.Close()
	s.Close()
	s.Flush()
}

// ignoredClose: suppression is honored for deliberate best-effort closes.
func ignoredClose(h *handle) {
	//lint:ignore errdrop best-effort close on an error path
	h.Close()
}
