// Package nofail provides teardown methods whose error results are
// provably always nil. Errfree exports NeverFails facts for them when this
// package is analyzed as a dependency; the importing package's errdrop run
// must see those facts across the gob round-trip and stay silent.
package nofail

// Sink buffers nothing, so teardown cannot fail.
type Sink struct{ closed bool }

func (s *Sink) Close() error {
	s.closed = true
	return nil
}

func (s *Sink) Flush() error { return nil }
