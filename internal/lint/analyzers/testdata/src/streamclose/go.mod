module streamclose

go 1.22
