// Test fixtures for the streamclose analyzer: operator run loops must
// defer-close their output channels.
package a

import "context"

// badOp never closes out: downstream consumers block forever.
type badOp struct {
	in  chan int
	out chan int
}

func (b *badOp) run(ctx context.Context) error { // want `never closes its output channel b\.out`
	for v := range b.in {
		b.out <- v
	}
	return nil
}

// inlineCloseOp closes out on the happy path only — an early return (or a
// panic) skips it, so an in-line close does not satisfy the contract.
type inlineCloseOp struct {
	in  chan int
	out chan int
}

func (c *inlineCloseOp) run(ctx context.Context) error { // want `never closes its output channel c\.out`
	for v := range c.in {
		if v < 0 {
			return nil
		}
		c.out <- v
	}
	close(c.out)
	return nil
}

// goodOp defer-closes its output: the contract holds on every return path.
type goodOp struct {
	in  chan int
	out chan int
}

func (g *goodOp) run(ctx context.Context) error {
	defer close(g.out)
	for v := range g.in {
		select {
		case g.out <- v:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// fanBad has multiple outputs and closes none of them.
type fanBad struct {
	in   chan int
	outs []chan int
}

func (f *fanBad) run(ctx context.Context) error { // want `never closes its output channels f\.outs`
	for v := range f.in {
		for _, ch := range f.outs {
			ch <- v
		}
	}
	return nil
}

// fanGood closes every branch through a deferred range loop.
type fanGood struct {
	in   chan int
	outs []chan int
}

func (f *fanGood) run(ctx context.Context) error {
	defer func() {
		for _, ch := range f.outs {
			close(ch)
		}
	}()
	for v := range f.in {
		for _, ch := range f.outs {
			ch <- v
		}
	}
	return nil
}

// sinkOp has no output fields: nothing to close, nothing to report.
type sinkOp struct {
	in chan int
}

func (s *sinkOp) run(ctx context.Context) error {
	for range s.in {
	}
	return nil
}

// runner has an out field but no method named run: only operator run loops
// are bound by the contract, so helper methods are out of scope.
type runner struct {
	out chan int
}

func (r *runner) start() {
	close(r.out)
}

// gate stands in for the stream package's opGuard.
type gate struct{}

// closeGated mirrors the stream package's quiesce-aware close wrapper: it
// unconditionally closes ch (after waiting out a checkpoint pause).
func closeGated(g *gate, ch chan int) {
	close(ch)
}

// gatedOp closes its output through the wrapper — the contract holds.
type gatedOp struct {
	g   *gate
	in  chan int
	out chan int
}

func (m *gatedOp) run(ctx context.Context) error {
	defer closeGated(m.g, m.out)
	for v := range m.in {
		m.out <- v
	}
	return nil
}

// gatedWrongArg passes a non-output field through the wrapper; out itself
// is still never closed.
type gatedWrongArg struct {
	g     *gate
	extra chan int
	out   chan int
}

func (w *gatedWrongArg) run(ctx context.Context) error { // want `never closes its output channel w\.out`
	defer closeGated(w.g, w.extra)
	for v := range w.in() {
		w.out <- v
	}
	return nil
}

func (w *gatedWrongArg) in() chan int { return w.extra }
