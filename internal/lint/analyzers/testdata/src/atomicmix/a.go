// Test fixtures for the atomicmix analyzer: a struct field must not be
// accessed both through sync/atomic and through plain loads/stores.
package a

import (
	"sync/atomic"

	"atomicmix/shared"
)

// gauge mixes access modes on val within one package.
type gauge struct {
	val int64
	n   int64 // plain-only: fine
}

func (g *gauge) bump() {
	atomic.AddInt64(&g.val, 1)
	g.n++
}

func (g *gauge) read() int64 {
	return g.val // want `field val is accessed with sync/atomic but read/written plainly here`
}

// readShared reads a field that another package only touches through
// sync/atomic — the mix is invisible without the AtomicUse fact.
func readShared(c *shared.Counters) int64 {
	return c.Hits // want `field Hits is accessed with sync/atomic in atomicmix/shared but read/written plainly here`
}

// goodShared uses the owner's fields the way the owner does: through its
// methods, or atomically on a field nobody reads plainly.
func goodShared(c *shared.Counters) int64 {
	return atomic.LoadInt64(&c.Misses) + c.HitCount()
}

// typed uses the typed-atomic API: the field's own methods are the only
// access path, so there is nothing to mix.
type typed struct {
	hits atomic.Int64
}

func (t *typed) bump() int64 {
	t.hits.Add(1)
	return t.hits.Load()
}

// racyButAudited: a deliberate, reviewed mixed access (a monotone
// best-effort statistic) is suppressible like any other finding.
type racyButAudited struct {
	approx int64
}

func (r *racyButAudited) bump() {
	atomic.AddInt64(&r.approx, 1)
}

func (r *racyButAudited) peek() int64 {
	//lint:ignore atomicmix approximate statistic; torn reads are acceptable here
	return r.approx
}
