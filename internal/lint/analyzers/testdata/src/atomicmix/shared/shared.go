// Package shared publishes a counter struct accessed with the sync/atomic
// package-level functions. The AtomicUse facts exported here are what let
// the analyzer flag a plain read of the same fields in an importing
// package.
package shared

import "sync/atomic"

// Counters is updated concurrently by every worker.
type Counters struct {
	Hits   int64
	Misses int64
}

// Hit records one cache hit.
func (c *Counters) Hit() { atomic.AddInt64(&c.Hits, 1) }

// Miss records one cache miss.
func (c *Counters) Miss() { atomic.AddInt64(&c.Misses, 1) }

// HitCount reads the hit counter the sanctioned way.
func (c *Counters) HitCount() int64 { return atomic.LoadInt64(&c.Hits) }
