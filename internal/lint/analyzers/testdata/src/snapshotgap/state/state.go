// Package state holds a counter type with private mutable state. Its
// SnapState fact — computed when this package is analyzed as a dependency
// — is what lets snapshotgap know that a value-typed Counter field in an
// importing package mutates under Inc(), three packages away from the
// operator that embeds it.
package state

// Counter accumulates through a pointer-receiver method.
type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

func (c *Counter) Get() int { return c.n }

// Label is immutable after construction: no method writes through the
// receiver, so a Label field never needs snapshotting.
type Label struct{ s string }

func (l Label) String() string { return l.s }
