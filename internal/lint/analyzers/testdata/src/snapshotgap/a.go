// Test fixtures for the snapshotgap analyzer: a Snapshotter's
// Snapshot/Restore pair must reference every mutable field of its
// receiver.
package a

import (
	"bytes"
	"encoding/gob"

	"snapshotgap/state"
)

// brokenOp mutates seen, total, and cnt at runtime, but its gob blob only
// carries seen: total and cnt are silently reset on crash recovery. The
// cnt mutation is invisible without facts — Inc's body lives in another
// package.
type brokenOp struct {
	out   chan int       // wiring, exempt
	cfg   int            // never mutated, nothing to snapshot
	seen  map[string]int // mutated and snapshotted
	total int            // mutated, forgotten
	cnt   state.Counter  // mutated via a cross-package method, forgotten
}

func (b *brokenOp) push(k string, v int) {
	b.seen[k] = v
	b.total += v
	b.cnt.Inc()
	b.out <- v
}

type brokenBlob struct{ Seen map[string]int }

func (b *brokenOp) Snapshot() ([]byte, error) { // want `Snapshot/Restore of brokenOp never reference mutable field (total|cnt)`
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(brokenBlob{Seen: b.seen})
	return buf.Bytes(), err
}

func (b *brokenOp) Restore(data []byte) error {
	var blob brokenBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return err
	}
	b.seen = blob.Seen
	return nil
}

// goodOp mutates the same shape of state but snapshots all of it.
type goodOp struct {
	out   chan int
	seen  map[string]int
	total int
	cnt   state.Counter
	name  state.Label // immutable cross-package type: method calls are not writes
}

func (g *goodOp) push(k string, v int) {
	g.seen[k] = v
	g.total += v
	g.cnt.Inc()
	g.out <- v
}

type goodBlob struct {
	Seen  map[string]int
	Total int
	Cnt   int
}

func (g *goodOp) Snapshot() ([]byte, error) {
	_ = g.name.String()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(goodBlob{Seen: g.seen, Total: g.total, Cnt: g.cnt.Get()})
	return buf.Bytes(), err
}

func (g *goodOp) Restore(data []byte) error {
	var blob goodBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return err
	}
	g.seen = blob.Seen
	g.total = blob.Total
	for i := 0; i < blob.Cnt; i++ {
		g.cnt.Inc()
	}
	return nil
}

// tracker is mutable but implements no Snapshot/Restore pair: only a fact
// is exported, no diagnostics.
type tracker struct{ n int }

func (t *tracker) bump() { t.n++ }

// sharedOp mutates state behind a pointer field. Pointee state is shared
// with whoever else holds the pointer — the engine's contract is that
// snapshots capture receiver-owned memory only, so this is clean.
type sharedOp struct {
	out   chan int
	stats *tracker
	seq   int
}

func (s *sharedOp) push(v int) {
	s.stats.bump()
	s.seq++
	s.out <- v
}

func (s *sharedOp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s.seq)
	return buf.Bytes(), err
}

func (s *sharedOp) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&s.seq)
}

// cacheOp deliberately excludes a rebuildable statistic from its blob; the
// suppression names the analyzer and gives the reason.
type cacheOp struct {
	out  chan int
	hits int
	data map[string]int
}

func (c *cacheOp) push(k string, v int) {
	c.data[k] = v
	c.hits++
	c.out <- v
}

//lint:ignore snapshotgap hits is a warm-cache statistic, rebuilt from data on restore
func (c *cacheOp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(c.data)
	return buf.Bytes(), err
}

func (c *cacheOp) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&c.data)
}

// lazyOp's finding exists only because of the cross-package SnapState fact
// on state.Counter — suppression must silence fact-derived diagnostics the
// same as local ones.
type lazyOp struct {
	out chan int
	cnt state.Counter
}

func (l *lazyOp) push(v int) {
	l.cnt.Inc()
	l.out <- v
}

//lint:ignore snapshotgap counter is approximate by design; a restart may reset it
func (l *lazyOp) Snapshot() ([]byte, error) { return nil, nil }

func (l *lazyOp) Restore([]byte) error { return nil }
