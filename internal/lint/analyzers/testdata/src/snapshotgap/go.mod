module snapshotgap

go 1.22
