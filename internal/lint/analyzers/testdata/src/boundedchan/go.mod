module boundedchan

go 1.22
