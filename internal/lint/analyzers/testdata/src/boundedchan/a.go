// Test fixtures for the boundedchan analyzer: data channels must be created
// with an explicit non-zero capacity.
package a

type signal = struct{}

type msg struct {
	seq  uint64
	data []byte
}

type msgChan chan msg

func badUnbuffered() chan int {
	return make(chan int) // want `unbuffered data channel`
}

func badUnbufferedBytes() {
	ch := make(chan []byte) // want `unbuffered data channel`
	_ = ch
}

func badExplicitZero() {
	ch := make(chan msg, 0) // want `zero-capacity data channel`
	_ = ch
}

const noBuffer = 0

func badConstZero() {
	ch := make(chan string, noBuffer) // want `zero-capacity data channel`
	_ = ch
}

func badNamedChanType() {
	ch := make(msgChan) // want `unbuffered data channel`
	_ = ch
}

func goodBuffered(n int) {
	a := make(chan int, 1)
	b := make(chan msg, 256)
	c := make(chan []byte, n) // runtime-sized: assumed config-driven
	_, _, _ = a, b, c
}

func goodSignal(done chan struct{}) {
	stop := make(chan struct{})
	quit := make(chan signal)
	zero := make(chan struct{}, 0)
	_, _, _ = stop, quit, zero
}

func goodNotAChan() {
	m := make(map[string]int)
	s := make([]int, 0)
	_, _ = m, s
}

func ignoredRendezvous() {
	//lint:ignore boundedchan handshake must rendezvous, never carries load
	ch := make(chan int)
	_ = ch
}
