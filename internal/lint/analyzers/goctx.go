package analyzers

import (
	"go/ast"
	"go/token"

	"strata/internal/lint/analysis"
)

// Goctx flags `go func(...)` literals that run an unbounded loop with no
// reachable stop signal. A goroutine whose body is `for { ... }` with no
// channel receive, no context use, and no conditional exit can never be
// stopped: it survives query shutdown and supervisor restarts, which is
// exactly the slow leak that multiplies once pipelines are sharded.
//
// A loop is considered stoppable when any of these appears inside it:
//
//   - a channel receive (<-ch, including select comm clauses) — covers done
//     channels and ticker/ctx.Done patterns
//   - a range over a channel — terminates when the producer closes it
//   - a use of a context.Context value — assumed to gate the loop
//   - a conditional exit: a return, or a break that targets this loop —
//     covers closed-over quit flags (`if stop.Load() { return }`) and
//     error exits
//
// Nested function literals are not searched: a signal consumed by a nested
// goroutine does not stop this one. The analysis is intra-procedural;
// goroutines that delegate their loop to a named function are not checked.
// False positives carry `//lint:ignore goctx <reason>` on the `go`
// statement.
var Goctx = &analysis.Analyzer{
	Name: "goctx",
	Doc:  "spawned goroutines need a reachable stop signal",
	Run:  runGoctx,
}

func runGoctx(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if inner, ok := m.(*ast.FuncLit); ok && inner != lit {
					return false
				}
				loop, ok := m.(*ast.ForStmt)
				if !ok || loop.Cond != nil {
					return true
				}
				if !loopStoppable(pass, loop) {
					pass.Reportf(g.Pos(),
						"goroutine loops forever with no reachable stop signal (no context, channel receive, or conditional exit); wire a cancellation path or annotate with //lint:ignore goctx <reason>")
					return false // one report per goroutine is enough
				}
				return true
			})
			return true
		})
	}
	return nil, nil
}

// loopStoppable reports whether the unconditional loop has any of the
// accepted stop signals in its body.
func loopStoppable(pass *analysis.Pass, loop *ast.ForStmt) bool {
	stop := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				stop = true
			}
		case *ast.RangeStmt:
			if isChan(pass.TypeOf(n.X)) {
				stop = true
			}
		case *ast.Ident:
			if obj := pass.ObjectOf(n); obj != nil && isContext(obj.Type()) {
				stop = true
			}
		case *ast.ReturnStmt:
			stop = true
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				stop = true // conservatively assume the goto leaves the loop
			}
		}
		return !stop
	})
	if stop {
		return true
	}
	return hasLoopBreak(loop.Body, 0)
}

// hasLoopBreak reports whether body contains a break that exits the loop it
// belongs to, tracking nesting so that breaks belonging to inner loops,
// switches, and selects are not credited. Labeled breaks are conservatively
// treated as exits.
func hasLoopBreak(body *ast.BlockStmt, depth int) bool {
	found := false
	var walk func(s ast.Stmt, depth int)
	walkBlock := func(b *ast.BlockStmt, depth int) {
		if b == nil {
			return
		}
		for _, s := range b.List {
			walk(s, depth)
		}
	}
	walk = func(s ast.Stmt, depth int) {
		if found || s == nil {
			return
		}
		switch s := s.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && (s.Label != nil || depth == 0) {
				found = true
			}
		case *ast.BlockStmt:
			walkBlock(s, depth)
		case *ast.IfStmt:
			walkBlock(s.Body, depth)
			walk(s.Else, depth)
		case *ast.ForStmt:
			walkBlock(s.Body, depth+1)
		case *ast.RangeStmt:
			walkBlock(s.Body, depth+1)
		case *ast.SwitchStmt:
			walkBlock(s.Body, depth+1)
		case *ast.TypeSwitchStmt:
			walkBlock(s.Body, depth+1)
		case *ast.SelectStmt:
			walkBlock(s.Body, depth+1)
		case *ast.CaseClause:
			for _, st := range s.Body {
				walk(st, depth)
			}
		case *ast.CommClause:
			for _, st := range s.Body {
				walk(st, depth)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, depth)
		}
	}
	walkBlock(body, depth)
	return found
}
