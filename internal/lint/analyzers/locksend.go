package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"strata/internal/lint/analysis"
)

// Locksend flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held. Holding a lock across a channel send/receive, a
// WaitGroup.Wait, a sleep, or blocking connection I/O couples lock hold
// time to the progress of other goroutines — the classic SPE deadlock shape
// where a blocked subscriber wedges every publisher contending for the
// same lock.
//
// The check is an intra-procedural, source-order approximation: Lock/RLock
// adds the mutex to the held set, Unlock/RUnlock removes it (a deferred
// Unlock keeps it held to function end), and any blocking operation while
// the set is non-empty is reported. Function literals are analyzed as
// independent scopes because their bodies do not run under the
// lexically-enclosing lock. Deliberate violations (there is one: the
// Block-policy delivery in pubsub) carry a //lint:ignore locksend comment
// and a DESIGN.md justification.
var Locksend = &analysis.Analyzer{
	Name: "locksend",
	Doc:  "no channel operations or blocking waits while a mutex is held",
	Run:  runLocksend,
}

// Fully-qualified method names that acquire and release mutexes, and the
// blocking calls the contract forbids under them. sync.Cond.Wait is
// intentionally absent from the blocking set: it requires the lock.
var (
	lockMethods = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	unlockMethods = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
	blockingCalls = map[string]string{
		"(*sync.WaitGroup).Wait": "sync.WaitGroup.Wait",
		"time.Sleep":             "time.Sleep",
		"(net.Conn).Read":        "blocking read on net.Conn",
		"(net.Conn).Write":       "blocking write on net.Conn",
	}
)

func runLocksend(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				scanLockScope(pass, fn.Body)
			}
		}
	}
	return nil, nil
}

// lockSet tracks held mutexes in acquisition order, keyed by the rendered
// receiver expression ("db.mu", "s.sendMu").
type lockSet struct{ keys []string }

func (ls *lockSet) add(k string) {
	for _, have := range ls.keys {
		if have == k {
			return
		}
	}
	ls.keys = append(ls.keys, k)
}

func (ls *lockSet) remove(k string) {
	for i, have := range ls.keys {
		if have == k {
			ls.keys = append(ls.keys[:i], ls.keys[i+1:]...)
			return
		}
	}
}

func (ls *lockSet) empty() bool { return len(ls.keys) == 0 }

func (ls *lockSet) String() string { return strings.Join(ls.keys, ", ") }

// scanLockScope walks one function body in source order, maintaining the
// held-lock set. Nested function literals start fresh scopes.
func scanLockScope(pass *analysis.Pass, body *ast.BlockStmt) {
	held := &lockSet{}
	deferred := make(map[*ast.CallExpr]bool)
	// Receives that serve as select comm clauses are reported through the
	// select itself, not once per case.
	inSelect := make(map[ast.Node]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			scanLockScope(pass, n.Body)
			return false

		case *ast.DeferStmt:
			deferred[n.Call] = true

		case *ast.CallExpr:
			name := calleeFullName(pass.TypesInfo, n)
			switch {
			case lockMethods[name]:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					held.add(exprText(sel.X))
				}
			case unlockMethods[name]:
				// A deferred unlock releases at return, so the lock stays
				// held for the rest of the function.
				if !deferred[n] {
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						held.remove(exprText(sel.X))
					}
				}
			default:
				if what, ok := blockingCalls[name]; ok && !held.empty() {
					pass.Reportf(n.Pos(), "%s while %s is held", what, held)
				}
			}

		case *ast.SendStmt:
			if !held.empty() && !inSelect[n] {
				pass.Reportf(n.Pos(), "channel send on %s while %s is held", exprText(n.Chan), held)
			}

		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !held.empty() && !inSelect[n] {
				pass.Reportf(n.Pos(), "channel receive from %s while %s is held", exprText(n.X), held)
			}

		case *ast.SelectStmt:
			blocking := true
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CommClause)
				if cc.Comm == nil {
					blocking = false // default clause: select cannot park
				} else {
					markCommOps(cc.Comm, inSelect)
				}
			}
			if blocking && !held.empty() {
				pass.Reportf(n.Pos(), "blocking select (no default) while %s is held", held)
			}

		case *ast.RangeStmt:
			if !held.empty() && isChan(pass.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "range over channel %s while %s is held", exprText(n.X), held)
			}
		}
		return true
	})
}

// markCommOps records the channel operations that form a select comm clause
// so they are not double-reported as standalone sends/receives.
func markCommOps(comm ast.Stmt, mark map[ast.Node]bool) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		mark[s] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			mark[u] = true
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				mark[u] = true
			}
		}
	}
}
