package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"strata/internal/lint/analysis"
)

// MetricNames is a package fact: every metric name this package emits
// through a telemetry Writer, mapped to the help string it was registered
// with. Importing packages use it to flag a metric re-registered under the
// same name — two owners for one time series means the pull-model registry
// silently serves whichever wrote last.
type MetricNames struct {
	Names map[string]string // metric name -> help text
}

// AFact marks MetricNames as a fact type.
func (*MetricNames) AFact() {}

// Metricname enforces the telemetry naming contract from DESIGN.md §6: a
// metric name passed to telemetry's Writer methods (Counter, Gauge,
// Histogram) must be
//
//   - a compile-time string constant — never a fmt.Sprintf-built value,
//     which turns label-shaped data into unbounded time series
//   - snake_case matching ^[a-z][a-z0-9_]*$
//   - prefixed strata_ (or go_ for the runtime-stats mirror)
//   - outside a reserved sub-prefix unless emitted by that prefix's owning
//     package (strata_trace_ belongs to telemetry, strata_flightrec_ to
//     obslog), so observability series stay single-sourced
//   - registered with one help string per package, and not already owned
//     by an imported package (checked via the MetricNames package fact)
var Metricname = &analysis.Analyzer{
	Name:      "metricname",
	Doc:       "telemetry metric names must be constant, strata_-prefixed snake_case, registered once",
	FactTypes: []analysis.Fact{(*MetricNames)(nil)},
	Run:       runMetricname,
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// reservedMetricPrefixes maps a reserved series prefix to the import path
// of the only package allowed to emit it. Kept sorted at use via
// sortedPrefixes so reports are deterministic. Testdata fakes mirror the
// real package layout under their own module roots, so ownership is matched
// on the path suffix.
var reservedMetricPrefixes = map[string]string{
	"strata_trace_":     "strata/internal/telemetry",
	"strata_flightrec_": "strata/internal/obslog",
}

// sortedPrefixes returns reservedMetricPrefixes' keys in stable order.
func sortedPrefixes() []string {
	keys := make([]string, 0, len(reservedMetricPrefixes))
	for k := range reservedMetricPrefixes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func runMetricname(pass *analysis.Pass) (any, error) {
	emitted := make(map[string]string) // name -> help, this package
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if !isWriterEmit(pass, call) {
				return true
			}
			nameArg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[nameArg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(nameArg.Pos(),
					"metric name must be a compile-time string constant, never built with fmt.Sprintf or concatenation: dynamic names turn data into unbounded time series")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(nameArg.Pos(),
					"metric name %q is not snake_case (want ^[a-z][a-z0-9_]*$)", name)
				return true
			}
			if !prefixed(name, "strata_") && !prefixed(name, "go_") {
				pass.Reportf(nameArg.Pos(),
					"metric name %q lacks the strata_ prefix (go_ is reserved for the runtime-stats mirror)", name)
				return true
			}
			for _, rp := range sortedPrefixes() {
				if !prefixed(name, rp) {
					continue
				}
				owner := reservedMetricPrefixes[rp]
				if !strings.HasSuffix(pass.Pkg.Path(), owner) {
					pass.Reportf(nameArg.Pos(),
						"metric %q uses the reserved prefix %s, owned by %s; emit it through that package's collector instead", name, rp, owner)
				}
				break
			}
			help := ""
			if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				help = constant.StringVal(tv.Value)
			}
			if prev, seen := emitted[name]; seen {
				if prev != help {
					pass.Reportf(nameArg.Pos(),
						"metric %q re-registered with different help text; one name, one help string", name)
				}
			} else {
				emitted[name] = help
			}
			// The same series emitted by two packages has two owners; the
			// registry serves whichever wrote last. Facts from imports say
			// who got there first.
			for _, dep := range sortedImports(pass.Pkg) {
				var mn MetricNames
				if !pass.ImportPackageFact(dep, &mn) {
					continue
				}
				if _, owned := mn.Names[name]; owned {
					pass.Reportf(nameArg.Pos(),
						"metric %q is already emitted by %s; one package owns a time series", name, dep.Path())
					break
				}
			}
			return true
		})
	}
	if len(emitted) > 0 {
		pass.ExportPackageFact(&MetricNames{Names: emitted})
	}
	return nil, nil
}

// isWriterEmit reports whether call is telemetry.Writer.Counter/Gauge/
// Histogram — matched structurally (a method of those names on a type
// named Writer in a package named telemetry) so testdata fakes of the
// telemetry API are held to the same contract as the real one.
func isWriterEmit(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Writer" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "telemetry"
}

func prefixed(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// sortedImports returns pass.Pkg's direct imports in a stable order, so
// cross-package duplicate reports don't depend on map iteration.
func sortedImports(pkg *types.Package) []*types.Package {
	imps := append([]*types.Package(nil), pkg.Imports()...)
	sort.Slice(imps, func(i, j int) bool { return imps[i].Path() < imps[j].Path() })
	return imps
}
