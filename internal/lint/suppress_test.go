package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text      string
		directive bool
		matches   []string
		misses    []string
	}{
		{"// regular comment", false, nil, nil},
		{"//lint:ignore locksend held on purpose", true, []string{"locksend"}, []string{"goctx"}},
		{"//lint:ignore locksend,goctx shared fixture", true, []string{"locksend", "goctx"}, []string{"errdrop"}},
		// A directive without a reason is recognized but suppresses nothing.
		{"//lint:ignore locksend", true, nil, []string{"locksend"}},
	}
	for _, c := range cases {
		sup, ok := parseDirective(c.text)
		if ok != c.directive {
			t.Errorf("parseDirective(%q): directive=%v, want %v", c.text, ok, c.directive)
			continue
		}
		for _, name := range c.matches {
			if !sup.matches(name) {
				t.Errorf("parseDirective(%q): should suppress %s", c.text, name)
			}
		}
		for _, name := range c.misses {
			if sup.matches(name) {
				t.Errorf("parseDirective(%q): should NOT suppress %s", c.text, name)
			}
		}
	}
}

func TestScanSuppressions(t *testing.T) {
	const src = `package p

//lint:ignore goctx whole function is exempt
func docSuppressed() {
	_ = 1
	_ = 2
}

func lineSuppressed() {
	//lint:ignore errdrop on the next line
	_ = 3
	_ = 4 //lint:ignore locksend trailing
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := scanSuppressions(fset, []*ast.File{f})

	pos := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	if !sup.suppressed("goctx", pos(5)) || !sup.suppressed("goctx", pos(6)) {
		t.Error("doc-comment directive should cover the whole function body")
	}
	if sup.suppressed("errdrop", pos(5)) {
		t.Error("doc-comment directive must not leak to other analyzers")
	}
	if !sup.suppressed("errdrop", pos(11)) {
		t.Error("directive above a line should suppress that line")
	}
	if !sup.suppressed("locksend", pos(12)) {
		t.Error("trailing directive should suppress its own line")
	}
	if sup.suppressed("errdrop", pos(12)) {
		t.Error("line 12 has no errdrop directive")
	}
}

// A directive above a statement that spans several lines covers the line
// the statement starts on — diagnostics anchor at statement start — but
// deliberately not the continuation lines: a finding deep inside a long
// literal still surfaces unless its own line is annotated.
func TestSuppressMultiLineStatement(t *testing.T) {
	const src = `package p

func f() {
	//lint:ignore boundedchan burst buffer sized by config
	ch := make(
		chan int,
		1024,
	)
	_ = ch
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := scanSuppressions(fset, []*ast.File{f})
	pos := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	if !sup.suppressed("boundedchan", pos(5)) {
		t.Error("directive above a multi-line statement must cover its first line")
	}
	for _, line := range []int{6, 7, 8} {
		if sup.suppressed("boundedchan", pos(line)) {
			t.Errorf("continuation line %d must not inherit the directive", line)
		}
	}
}

// A directive with no reason is recognized but suppresses nothing — here
// checked on line coverage, complementing TestParseDirective's unit cases.
func TestSuppressReasonlessDirective(t *testing.T) {
	const src = `package p

func f() {
	//lint:ignore errdrop
	_ = 1
	_ = 2 //lint:ignore locksend
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := scanSuppressions(fset, []*ast.File{f})
	if sup.suppressed("errdrop", token.Position{Filename: "p.go", Line: 5}) {
		t.Error("reasonless line directive must not suppress")
	}
	if sup.suppressed("locksend", token.Position{Filename: "p.go", Line: 6}) {
		t.Error("reasonless trailing directive must not suppress")
	}
}
