// Package loader type-checks Go packages for the strata-lint analyzers
// using only the standard library.
//
// Package discovery shells out to `go list -json` (the one authoritative
// source of build metadata that works in module mode), module-local packages
// are parsed and type-checked from source in dependency order, and anything
// outside the module under analysis — in this repository that is only the
// standard library — is resolved through the source importer, which compiles
// type information straight from GOROOT and therefore works offline.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked, module-local package.
type Package struct {
	Path  string // import path
	Dir   string // directory holding the sources
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Imports lists the module-local import paths of this package, in
	// sorted order. The driver uses it to compute fact visibility.
	Imports []string

	// Matched is true when the package was selected by the load patterns
	// themselves; false when it was pulled in only as a dependency of a
	// matched package (analyzers still run on it — facts must exist before
	// importers are analyzed — but its diagnostics are not reported).
	Matched bool

	// TypeErrors collects soft type-check errors. Packages with errors
	// still carry partial type information.
	TypeErrors []error
}

// The fileset and the stdlib importer are process-global so repeated Load
// calls (one per analysistest testdata module) share the type-checked
// standard library instead of re-checking sync/context/os from source each
// time.
var (
	fset = token.NewFileSet()

	stdImpOnce sync.Once
	stdImp     types.Importer
	stdMu      sync.Mutex
)

func stdImporter() types.Importer {
	stdImpOnce.Do(func() {
		stdImp = importer.ForCompiler(fset, "source", nil)
	})
	return stdImp
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool // part of the standard library
	DepOnly    bool // reached only as a dependency of a matched pattern
	Incomplete bool
	Error      *struct{ Err string }
}

// Load discovers the packages matching patterns relative to dir — plus
// their module-local dependencies, so modular analyzers can compute facts
// for every package an analyzed package imports — parses them, and
// type-checks them in dependency order (a package always appears after all
// of its module-local imports in the returned slice). Dependency-only
// packages carry Matched == false. The returned FileSet is shared by all
// loads in the process.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	byPath := make(map[string]*listPackage, len(metas))
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}

	// Topological order over the module-local import graph so every local
	// dependency is checked before its importers.
	var order []*listPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(m *listPackage) error
	visit = func(m *listPackage) error {
		switch state[m.ImportPath] {
		case 1:
			return fmt.Errorf("lint/loader: import cycle through %s", m.ImportPath)
		case 2:
			return nil
		}
		state[m.ImportPath] = 1
		for _, imp := range m.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[m.ImportPath] = 2
		order = append(order, m)
		return nil
	}
	sorted := make([]*listPackage, len(metas))
	copy(sorted, metas)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, m := range sorted {
		if err := visit(m); err != nil {
			return nil, nil, err
		}
	}

	local := make(map[string]*types.Package, len(order))
	imp := &moduleImporter{local: local}
	var pkgs []*Package

	// The source importer mutates shared caches and the global fileset;
	// serialize whole-graph checking (Load is rarely called concurrently,
	// but linttest runs under `go test -parallel`).
	stdMu.Lock()
	defer stdMu.Unlock()

	for _, m := range order {
		pkg, err := checkOne(m, imp)
		if err != nil {
			return nil, nil, err
		}
		pkg.Matched = !m.DepOnly
		for _, dep := range m.Imports {
			if _, ok := byPath[dep]; ok {
				pkg.Imports = append(pkg.Imports, dep)
			}
		}
		sort.Strings(pkg.Imports)
		local[m.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

func checkOne(m *listPackage, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		path := filepath.Join(m.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint/loader: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: m.ImportPath, Dir: m.Dir, Files: files}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	// Checker errors are collected through conf.Error; the returned error
	// only duplicates the first one, and partial packages are still useful.
	tpkg, _ := conf.Check(m.ImportPath, fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// moduleImporter resolves module-local packages from the current load and
// everything else (the standard library) through the source importer.
type moduleImporter struct {
	local map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.local[path]; ok && p != nil {
		return p, nil
	}
	return stdImporter().Import(path)
}

func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOWORK=off", "GOFLAGS=")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint/loader: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []*listPackage
	for {
		var m listPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint/loader: decode go list output: %w", err)
		}
		if m.Standard {
			continue // the stdlib resolves through the source importer
		}
		if m.Error != nil {
			return nil, fmt.Errorf("lint/loader: %s: %s", m.ImportPath, m.Error.Err)
		}
		if len(m.GoFiles) == 0 {
			continue // nothing to analyze (e.g. test-only package)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}
