package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive is staticcheck's:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive on its own line suppresses matching findings on the next
// line; a trailing directive suppresses findings on its own line; a
// directive in a function's doc comment suppresses matching findings in the
// whole function. The reason is mandatory — a bare ignore is itself a
// malformed directive and suppresses nothing.

const ignorePrefix = "//lint:ignore "

type suppression struct {
	names map[string]bool // nil means malformed (no reason given)
}

func (s suppression) matches(analyzer string) bool {
	return s.names != nil && s.names[analyzer]
}

type suppressions struct {
	// byLine maps file:line of the code a line-directive covers.
	byLine map[string][]suppression
	// funcRanges holds doc-comment directives covering whole functions.
	funcRanges []funcSuppression
	fset       *token.FileSet
}

type funcSuppression struct {
	file       string
	start, end int // line range, inclusive
	sup        suppression
}

func parseDirective(text string) (suppression, bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return suppression{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		// Directive without a reason: recognized, but suppresses nothing.
		return suppression{}, true
	}
	names := make(map[string]bool)
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	return suppression{names: names}, true
}

func scanSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string][]suppression), fset: fset}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				sup, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				// The directive covers its own line (trailing comment)
				// and the next line (comment above the statement).
				s.add(pos.Filename, pos.Line, sup)
				s.add(pos.Filename, pos.Line+1, sup)
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				sup, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				start := fset.Position(fn.Pos())
				end := fset.Position(fn.End())
				s.funcRanges = append(s.funcRanges, funcSuppression{
					file: start.Filename, start: start.Line, end: end.Line, sup: sup,
				})
			}
		}
	}
	return s
}

func (s *suppressions) add(file string, line int, sup suppression) {
	key := lineKey(file, line)
	s.byLine[key] = append(s.byLine[key], sup)
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	for _, sup := range s.byLine[lineKey(pos.Filename, pos.Line)] {
		if sup.matches(analyzer) {
			return true
		}
	}
	for _, fr := range s.funcRanges {
		if fr.file == pos.Filename && pos.Line >= fr.start && pos.Line <= fr.end && fr.sup.matches(analyzer) {
			return true
		}
	}
	return false
}

func lineKey(file string, line int) string {
	// Lines never exceed a few thousand; a simple string key is fine.
	return file + "\x00" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
