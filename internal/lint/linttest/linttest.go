// Package linttest is the analysistest counterpart for the in-tree
// analysis framework: it runs one analyzer over a testdata module and
// checks its findings against `// want` annotations.
//
// Testdata layout follows x/tools convention: testdata/src/<module>/ holds
// a self-contained Go module (its own go.mod, stdlib imports only, so it
// loads offline). An expectation is a comment
//
//	// want `regexp`
//
// on the line a finding must appear on. Every finding must match a want on
// its line and every want must be matched by at least one finding;
// //lint:ignore suppression is applied before matching, so suppressed lines
// simply carry no want.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"strata/internal/lint"
	"strata/internal/lint/analysis"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+`([^`]+)`")

// Run loads testdata/src/<module> (relative to the calling test's working
// directory) and verifies analyzer a's findings against its want
// annotations.
func Run(t *testing.T, a *analysis.Analyzer, module string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", module)
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Fatalf("linttest: testdata module %s has no go.mod: %v", dir, err)
	}

	findings, err := lint.Run(dir, []string{"./..."}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: running %s over %s: %v", a.Name, dir, err)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, f := range findings {
		key := lineID(f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(f.Message) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w.hits == 0 {
				t.Errorf("no finding matched `%s` at %s", w.re, key)
			}
		}
	}
}

type want struct {
	re   *regexp.Regexp
	hits int
}

// collectWants scans every .go file under dir for want annotations, keyed
// by file:line.
func collectWants(dir string) (map[string][]*want, error) {
	wants := make(map[string][]*want)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
			}
			key := lineID(abs, i+1)
			wants[key] = append(wants[key], &want{re: re})
		}
		return nil
	})
	return wants, err
}

func lineID(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
