package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a log-bucketed histogram of non-negative float64 samples
// (latencies in seconds, sizes in bytes, ...). Bucket upper bounds grow
// geometrically from a configured minimum, which keeps relative quantile
// error bounded by the growth factor at any scale — the standard trick of
// HdrHistogram and Prometheus native histograms. Recording is lock-free:
// one atomic add on the bucket, plus atomic updates of count/sum/max.
//
// The zero value is not usable; construct with NewHistogram or
// NewDurationHistogram.
type Histogram struct {
	upper  []float64 // bucket i covers (upper[i-1], upper[i]]; bucket 0 covers [0, upper[0]]
	counts []atomic.Uint64
	// overflow counts samples beyond the last bucket bound.
	overflow atomic.Uint64
	count    atomic.Uint64
	sumBits  atomic.Uint64
	maxBits  atomic.Uint64 // float64 bits; valid ordering for non-negative floats
	invLog   float64       // 1 / ln(growth), for O(1) bucket lookup
	min      float64
}

// NewHistogram builds a histogram with n buckets whose upper bounds are
// min, min*growth, min*growth², ... Samples above the last bound land in an
// overflow bucket (rendered as +Inf). min must be > 0, growth > 1, n >= 1;
// invalid arguments are clamped to a usable default.
func NewHistogram(min, growth float64, n int) *Histogram {
	if min <= 0 {
		min = 1e-6
	}
	if growth <= 1 {
		growth = 2
	}
	if n < 1 {
		n = 1
	}
	h := &Histogram{
		upper:  make([]float64, n),
		counts: make([]atomic.Uint64, n),
		invLog: 1 / math.Log(growth),
		min:    min,
	}
	b := min
	for i := range h.upper {
		h.upper[i] = b
		b *= growth
	}
	return h
}

// NewDurationHistogram builds the standard latency histogram used across
// the stack: 36 power-of-two buckets from 1µs to ~9.5h, recorded in
// seconds. The sub-microsecond bucket absorbs trivial operations; the wide
// top keeps compaction- and build-scale durations on the same instrument.
func NewDurationHistogram() *Histogram {
	return NewHistogram(1e-6, 2, 36)
}

// NewSizeHistogram builds a histogram for byte sizes: 32 power-of-two
// buckets from 64 B to ~128 GiB.
func NewSizeHistogram() *Histogram {
	return NewHistogram(64, 2, 32)
}

// NewBatchHistogram builds a histogram for batch/chunk sizes counted in
// items: 16 power-of-two buckets from 1 to 32768, enough headroom for any
// realistic micro-batch while keeping single-item sends in their own bucket.
func NewBatchHistogram() *Histogram {
	return NewHistogram(1, 2, 16)
}

// bucketIndex returns the bucket covering v, or len(upper) for overflow.
func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.min {
		return 0
	}
	i := int(math.Ceil(math.Log(v/h.min) * h.invLog))
	// Guard the float math at bucket boundaries: log/exp rounding can be
	// off by one in either direction.
	if i > 0 && v <= h.upper[min(i-1, len(h.upper)-1)] {
		i--
	}
	if i < len(h.upper) && v > h.upper[i] {
		i++
	}
	return i
}

// Observe records one sample. Negative samples are clamped to zero (the
// instrument is for magnitudes; a negative latency is clock skew, not
// signal).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if i := h.bucketIndex(v); i >= len(h.counts) {
		h.overflow.Add(1)
	} else {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for { // float sum via CAS
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for { // running max; float64 bit patterns of non-negative floats order correctly
		old := h.maxBits.Load()
		if math.Float64bits(v) <= old {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveN records n samples of equal value v in one pass: one bucket add,
// one count add, one sum update. It is the batch-friendly fast path for
// callers that amortize measurement over a chunk of work and attribute the
// per-item average to each item — the histogram's count still advances by n,
// so rates and means stay exact while quantiles coarsen to chunk granularity.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	if n == 1 {
		h.Observe(v)
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if i := h.bucketIndex(v); i >= len(h.counts) {
		h.overflow.Add(n)
	} else {
		h.counts[i].Add(n)
	}
	h.count.Add(n)
	add := v * float64(n)
	for { // float sum via CAS
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + add)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64bits(v) <= old {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram's state. The
// copy is not atomic across buckets — concurrent observations may be
// partially included — which is the usual, acceptable scrape-time blur.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Upper:    h.upper,
		Counts:   make([]uint64, len(h.counts)),
		Overflow: h.overflow.Load(),
		Count:    h.count.Load(),
		Sum:      math.Float64frombits(h.sumBits.Load()),
		Max:      math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram. Upper is shared
// with the live histogram and must not be mutated.
type HistogramSnapshot struct {
	Upper    []float64 // bucket upper bounds, ascending
	Counts   []uint64  // per-bucket (non-cumulative) sample counts
	Overflow uint64    // samples above the last bound
	Count    uint64
	Sum      float64
	Max      float64
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the target rank. The estimate's relative error
// is bounded by the bucket growth factor. Returns 0 when empty; returns
// Max for ranks landing in the overflow bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Upper[i-1]
			}
			// Position of the target rank within this bucket.
			frac := (rank - float64(cum)) / float64(c)
			v := lower + frac*(s.Upper[i]-lower)
			// Never report beyond the observed maximum.
			return math.Min(v, s.Max)
		}
		cum += c
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observed samples (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
