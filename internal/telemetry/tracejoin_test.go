package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestMergeFragmentsOrdersAndDedups(t *testing.T) {
	base := time.Unix(1000, 0)
	frags := []TraceSnapshot{
		{
			TraceID: "abc123", SpanID: "s2", ParentSpanID: "s1",
			Label: "broker/strata.raw.ot.j", Process: "strata-broker", PID: 200,
			Start: base.Add(10 * time.Millisecond), Finished: true, Total: 2 * time.Millisecond,
			Spans: []Span{{Op: "deliver", Start: 0, Duration: 2 * time.Millisecond}},
		},
		{
			TraceID: "abc123", SpanID: "s1",
			Label: "src", Process: "worker", PID: 100,
			Start: base, Finished: true, Total: 8 * time.Millisecond,
			Spans: []Span{{Op: "collect", Start: 0, Duration: 8 * time.Millisecond}},
		},
		// The broker fragment again, as fetched from a second endpoint:
		// must be dropped by span ID.
		{
			TraceID: "abc123", SpanID: "s2", ParentSpanID: "s1",
			Label: "broker/strata.raw.ot.j", Process: "strata-broker", PID: 200,
			Start: base.Add(10 * time.Millisecond), Finished: true, Total: 2 * time.Millisecond,
		},
		{
			TraceID: "abc123", SpanID: "s3", ParentSpanID: "s2",
			Label: "sink", Process: "worker2", PID: 300,
			Start: base.Add(15 * time.Millisecond), Finished: true, Total: 5 * time.Millisecond,
			Spans: []Span{{Op: "deliver", Start: time.Millisecond, Duration: 4 * time.Millisecond}},
		},
	}
	m := MergeFragments(frags)
	if m.TraceID != "abc123" {
		t.Errorf("TraceID = %q, want abc123", m.TraceID)
	}
	if len(m.Fragments) != 3 {
		t.Fatalf("fragments = %d, want 3 (duplicate span dropped)", len(m.Fragments))
	}
	for i, want := range []string{"s1", "s2", "s3"} {
		if m.Fragments[i].SpanID != want {
			t.Errorf("fragment %d span = %q, want %q (start-time order)", i, m.Fragments[i].SpanID, want)
		}
	}
	wantProcs := []string{"worker[100]", "strata-broker[200]", "worker2[300]"}
	if len(m.Processes) != len(wantProcs) {
		t.Fatalf("processes = %v, want %v", m.Processes, wantProcs)
	}
	for i, p := range wantProcs {
		if m.Processes[i] != p {
			t.Errorf("process %d = %q, want %q", i, m.Processes[i], p)
		}
	}
	if !m.Start.Equal(base) {
		t.Errorf("Start = %v, want %v", m.Start, base)
	}
	if want := base.Add(20 * time.Millisecond); !m.End.Equal(want) {
		t.Errorf("End = %v, want %v", m.End, want)
	}
}

func TestMergeFragmentsAnonymousAndEmpty(t *testing.T) {
	if m := MergeFragments(nil); m.TraceID != "" || len(m.Fragments) != 0 {
		t.Errorf("merge of nothing = %+v, want zero value", m)
	}
	// Pre-context fragments (no span ID) are keyed by content, not all
	// collapsed into one.
	frags := []TraceSnapshot{
		{ID: 1, Label: "a", PID: 1, Start: time.Unix(1, 0)},
		{ID: 2, Label: "b", PID: 1, Start: time.Unix(2, 0)},
		{ID: 1, Label: "a", PID: 1, Start: time.Unix(1, 0)}, // duplicate
	}
	if m := MergeFragments(frags); len(m.Fragments) != 2 {
		t.Errorf("anonymous fragments = %d, want 2", len(m.Fragments))
	}
}

func TestTimelineRendering(t *testing.T) {
	base := time.Unix(2000, 0)
	m := MergeFragments([]TraceSnapshot{
		{
			TraceID: "deadbeef", SpanID: "aa", Label: "src", Process: "p1", PID: 10,
			Start: base, Finished: true, Total: 3 * time.Millisecond,
			Spans: []Span{{Op: "collect", Start: 0, Duration: 3 * time.Millisecond}},
		},
		{
			TraceID: "deadbeef", SpanID: "bb", ParentSpanID: "aa", Label: "sink", Process: "p2", PID: 20,
			Start: base.Add(5 * time.Millisecond), Finished: true, Total: time.Millisecond,
			Spans:        []Span{{Op: "apply", Start: 0, Duration: time.Millisecond}},
			DroppedSpans: 3,
		},
	})
	out := m.Timeline()
	for _, want := range []string{
		"trace deadbeef: 2 fragment(s) across 2 process(es)",
		"p1[10] src (span aa, root)",
		"p2[20] sink (span bb, parent aa)",
		"collect",
		"apply",
		"3 span(s) dropped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Timeline missing %q:\n%s", want, out)
		}
	}
}
