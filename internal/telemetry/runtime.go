package telemetry

import (
	"runtime"
)

// GoRuntime is a Collector emitting process-level Go runtime stats:
// goroutine count, heap usage, and GC activity. Register it once per
// registry:
//
//	reg.Register(telemetry.GoRuntime{})
type GoRuntime struct{}

// Collect implements Collector.
func (GoRuntime) Collect(w *Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.Gauge("go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	w.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	w.Gauge("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
	w.Gauge("go_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects))
	w.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	w.Counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)
	if ms.NumGC > 0 {
		w.Gauge("go_gc_last_pause_seconds", "Duration of the most recent GC pause.",
			float64(ms.PauseNs[(ms.NumGC+255)%256])/1e9)
	}
	w.Counter("go_alloc_bytes_total", "Cumulative bytes allocated on the heap.", float64(ms.TotalAlloc))
}
