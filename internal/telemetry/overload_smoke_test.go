// Exposition smoke test for the overload-protection metrics (DESIGN.md §11):
// a deployment that shed expired tuples, suppressed an expired durable
// effect, rejected an over-quota publish, and holds a circuit breaker must
// serve all of it as a valid Prometheus exposition.
package telemetry_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"strata/internal/core"
	"strata/internal/kvstore"
	"strata/internal/pubsub"
	"strata/internal/telemetry"
)

func TestOverloadMetricsExposition(t *testing.T) {
	broker := pubsub.NewBroker(pubsub.WithSubjectQuota("quota.>", 1))
	defer broker.Close()
	m, err := core.NewManager(t.TempDir(), broker,
		core.WithOverloadControl(core.OverloadConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	base := time.UnixMicro(1_000_000)
	// Completed pipelines leave the manager's collection, so both sources
	// emit their load and then park on release: the scrape below observes a
	// live deployment.
	release := make(chan struct{})
	park := func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	// Pipeline 1: shed-late engaged, every tuple long expired — the whole
	// offered load is shed at the gates (reason "expired").
	shed, err := m.Deploy("shedder", func(fw *core.Framework) error {
		fw.Query().Overload().SetShedLate(true, 0)
		src := fw.AddSource("src", func(ctx context.Context, emit func(core.EventTuple) error) error {
			for i := 1; i <= 10; i++ {
				err := emit(core.EventTuple{
					TS:       base.Add(time.Duration(i) * time.Millisecond),
					Job:      "j",
					Layer:    i,
					Deadline: time.Now().Add(-time.Hour),
				})
				if err != nil {
					return err
				}
			}
			park(ctx)
			return nil
		})
		fw.Deliver("out", src, func(core.EventTuple) error { return nil })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pipeline 2: no shedding — an expired tuple travels to the durable sink
	// and is suppressed there (the deadline terminus).
	durable, err := m.Deploy("terminus", func(fw *core.Framework) error {
		src := fw.AddSource("src", func(ctx context.Context, emit func(core.EventTuple) error) error {
			err := emit(core.EventTuple{
				TS:       base,
				Job:      "j",
				Layer:    1,
				Deadline: time.Now().Add(-time.Hour),
			})
			park(ctx)
			return err
		})
		fw.DeliverDurable("out", src, func(seq uint64, tu core.EventTuple, b *kvstore.Batch) error {
			b.Put(fmt.Appendf(nil, "out/%d", seq), nil)
			return nil
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		for _, p := range []*core.Pipeline{shed, durable} {
			if err := p.Wait(); err != nil {
				t.Errorf("pipeline %s ended with %v", p.Name(), err)
			}
		}
	}()

	// Broker admission: fill the only matching subscription to its quota and
	// bounce one publish off it.
	sub, err := broker.Subscribe("quota.x", pubsub.WithSubBuffer(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if err := broker.Publish("quota.x", []byte("fill")); err != nil {
		t.Fatal(err)
	}
	if err := broker.Publish("quota.x", nil); !errors.Is(err, pubsub.ErrOverQuota) {
		t.Fatalf("publish at quota = %v, want ErrOverQuota", err)
	}

	// Client breaker: a healthy connection with a breaker installed exposes
	// its state gauge and counters.
	srv, err := pubsub.Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := pubsub.DialReconnect(srv.Addr(), pubsub.WithBreaker(3, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	reg := telemetry.NewRegistry()
	reg.Register(m)
	reg.Register(broker)
	reg.Register(rc)
	gather := func() string {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	markers := map[string]string{
		"controller level gauge":    "strata_overload_level",
		"controller pressure gauge": "strata_overload_pressure",
		"shed counter (expired)":    `strata_stream_op_shed_total{op="src",query="shedder",reason="expired"} 10`,
		"expired durable effects":   `strata_overload_expired_effects_total{pipeline="terminus",sink="out"} 1`,
		"broker quota rejections":   "strata_pubsub_over_quota_total 1",
		"slow-consumer evictions":   "strata_pubsub_slow_consumers_evicted_total 0",
		"breaker state gauge":       `strata_pubsub_client_breaker_state{state="closed"} 1`,
		"breaker opened counter":    "strata_pubsub_client_breaker_opened_total 0",
		"breaker fast-fail counter": "strata_pubsub_client_breaker_fast_fails_total 0",
	}
	complete := func(text string) bool {
		for _, marker := range markers {
			if !strings.Contains(text, marker) {
				return false
			}
		}
		return true
	}
	// The sheds and the durable suppression race the first scrape; poll
	// until the pipelines' counters have landed.
	text := gather()
	for deadline := time.Now().Add(10 * time.Second); !complete(text); text = gather() {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := telemetry.ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v\n---\n%s", err, text)
	}
	for what, marker := range markers {
		if !strings.Contains(text, marker) {
			t.Errorf("/metrics missing %s: %q\n---\n%s", what, marker, text)
		}
	}
}
