package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Register(GoRuntime{})
	buf := NewTraceBuffer(8)
	tr := NewTrace(1, "pipe")
	tr.Record("map", time.Millisecond)
	tr.Finish()
	buf.Add(tr)

	h := NewHandler(reg,
		WithPipelines(func() any {
			return []map[string]any{{"name": "p1", "status": "running"}}
		}),
		WithTraces(func() []TraceSnapshot { return buf.Slowest(0) }),
	)
	srv, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := ValidateExposition(body); err != nil {
		t.Errorf("/metrics invalid: %v\n---\n%s", err, body)
	}

	code, body = get("/debug/pipelines")
	if code != 200 {
		t.Fatalf("/debug/pipelines status = %d", code)
	}
	var pipes []map[string]any
	if err := json.Unmarshal([]byte(body), &pipes); err != nil || len(pipes) != 1 {
		t.Errorf("/debug/pipelines = %q (err %v)", body, err)
	}

	code, body = get("/debug/traces?n=1")
	if code != 200 {
		t.Fatalf("/debug/traces status = %d", code)
	}
	var report struct {
		Count  int             `json:"count"`
		Traces []TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/debug/traces decode: %v: %q", err, body)
	}
	if report.Count != 1 || len(report.Traces) != 1 || len(report.Traces[0].Spans) != 1 {
		t.Errorf("/debug/traces = %+v, want 1 trace with 1 span", report)
	}
}

func TestHandlerWithoutDebugSources(t *testing.T) {
	h := NewHandler(NewRegistry())
	srv, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/pipelines", "/debug/traces"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without source: status %d, want 404", path, resp.StatusCode)
		}
	}
}
