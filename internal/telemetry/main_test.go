package telemetry

import (
	"testing"

	"strata/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind —
// telemetry servers and trace plumbing must always tear down cleanly.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
