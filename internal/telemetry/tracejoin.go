package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// MergedTrace is the cross-process assembly of one trace: every fragment
// that shares a trace ID, gathered from N processes' /debug/trace/<id>
// endpoints and ordered into a single timeline.
type MergedTrace struct {
	TraceID   string          `json:"trace_id"`
	Fragments []TraceSnapshot `json:"fragments"`
	Processes []string        `json:"processes"` // distinct "process[pid]" labels, in first-seen order
	Start     time.Time       `json:"start"`     // earliest fragment start
	End       time.Time       `json:"end"`       // latest span (or fragment) end
}

// MergeFragments joins trace fragments (typically fetched from several
// processes) into one timeline. Duplicate fragments — the same span ID
// seen via more than one endpoint — are dropped; fragments are ordered by
// wall-clock start. An empty input yields a zero MergedTrace.
//
// Span times from different processes are compared on the wall clock, so
// cross-host skew shows up as overlap or gaps; within one host (the make
// obs-smoke topology) ordering is faithful.
func MergeFragments(frags []TraceSnapshot) MergedTrace {
	var m MergedTrace
	seen := make(map[string]bool, len(frags))
	for _, f := range frags {
		key := f.SpanID
		if key == "" {
			// Pre-context fragments have no span ID; key by content order.
			key = fmt.Sprintf("anon-%s-%d-%d", f.Label, f.PID, f.ID)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		m.Fragments = append(m.Fragments, f)
	}
	sort.SliceStable(m.Fragments, func(i, j int) bool {
		return m.Fragments[i].Start.Before(m.Fragments[j].Start)
	})
	procSeen := make(map[string]bool)
	for _, f := range m.Fragments {
		if m.TraceID == "" {
			m.TraceID = f.TraceID
		}
		proc := fmt.Sprintf("%s[%d]", f.Process, f.PID)
		if !procSeen[proc] {
			procSeen[proc] = true
			m.Processes = append(m.Processes, proc)
		}
		if m.Start.IsZero() || f.Start.Before(m.Start) {
			m.Start = f.Start
		}
		end := f.Start
		if f.Finished {
			end = f.Start.Add(f.Total)
		}
		for _, sp := range f.Spans {
			if e := f.Start.Add(sp.Start + sp.Duration); e.After(end) {
				end = e
			}
		}
		if end.After(m.End) {
			m.End = end
		}
	}
	return m
}

// Timeline renders the merged trace as an indented text timeline: one
// header per fragment (process, label, parent link) and one line per span
// with its offset from the merged start.
func (m MergedTrace) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d fragment(s) across %d process(es), %v total\n",
		m.TraceID, len(m.Fragments), len(m.Processes), m.End.Sub(m.Start).Round(time.Microsecond))
	for _, f := range m.Fragments {
		parent := "root"
		if f.ParentSpanID != "" {
			parent = "parent " + f.ParentSpanID
		}
		fmt.Fprintf(&b, "  %s[%d] %s (span %s, %s)\n", f.Process, f.PID, f.Label, f.SpanID, parent)
		for _, sp := range f.Spans {
			off := f.Start.Add(sp.Start).Sub(m.Start)
			fmt.Fprintf(&b, "    %10s  %-28s %v\n",
				"+"+off.Round(time.Microsecond).String(), sp.Op, sp.Duration.Round(time.Microsecond))
		}
		if f.DroppedSpans > 0 {
			fmt.Fprintf(&b, "    ... %d span(s) dropped at the per-trace cap\n", f.DroppedSpans)
		}
	}
	return b.String()
}
