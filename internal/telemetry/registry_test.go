package telemetry

import (
	"strings"
	"testing"
)

func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram(0.001, 10, 3) // bounds 0.001, 0.01, 0.1
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // overflow
	reg.RegisterFunc(func(w *Writer) {
		w.Counter("strata_test_ops_total", "Operations.", 42, L("op", "map"))
		w.Counter("strata_test_ops_total", "Operations.", 7, L("op", "sink"))
		w.Gauge("strata_test_depth", "Queue depth.", 3)
		w.Histogram("strata_test_latency_seconds", "Latency.", h.Snapshot(), L("op", "map"))
	})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, want := range []string{
		"# TYPE strata_test_ops_total counter",
		`strata_test_ops_total{op="map"} 42`,
		`strata_test_ops_total{op="sink"} 7`,
		"# TYPE strata_test_depth gauge",
		"strata_test_depth 3",
		"# TYPE strata_test_latency_seconds histogram",
		`strata_test_latency_seconds_bucket{le="0.001",op="map"} 1`,
		`strata_test_latency_seconds_bucket{le="0.1",op="map"} 2`,
		`strata_test_latency_seconds_bucket{le="+Inf",op="map"} 3`,
		`strata_test_latency_seconds_count{op="map"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, text)
		}
	}
	if err := ValidateExposition(text); err != nil {
		t.Errorf("ValidateExposition: %v\n---\n%s", err, text)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterFunc(func(w *Writer) {
		w.Gauge("strata_test_esc", "Escapes.", 1, L("path", `a"b\c`+"\n"))
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `path="a\"b\\c\n"`) {
		t.Errorf("label not escaped: %s", text)
	}
	if err := ValidateExposition(text); err != nil {
		t.Errorf("ValidateExposition: %v", err)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for _, tc := range []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"no type", "foo 1\n"},
		{"bad name", "# TYPE 9foo counter\n9foo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo abc\n"},
		{"unquoted label", "# TYPE foo counter\nfoo{a=b} 1\n"},
		{"unterminated labels", "# TYPE foo counter\nfoo{a=\"b\" 1\n"},
		{"unknown type", "# TYPE foo banana\nfoo 1\n"},
	} {
		if err := ValidateExposition(tc.text); err == nil {
			t.Errorf("%s: ValidateExposition accepted invalid input", tc.name)
		}
	}
}

func TestGoRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	reg.Register(GoRuntime{})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "go_goroutines") {
		t.Errorf("missing go_goroutines:\n%s", text)
	}
	if err := ValidateExposition(text); err != nil {
		t.Errorf("ValidateExposition: %v\n---\n%s", err, text)
	}
}
