package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// idFallback feeds fillRandom when crypto/rand fails.
var idFallback atomic.Uint64

// TraceContext is the cross-process identity of a trace, modeled on the
// W3C traceparent header: a 16-byte trace ID shared by every span fragment
// of one traced tuple, the 8-byte span ID of the fragment that handed the
// tuple over, and a sampling bit. It is what crosses the pubsub wire and
// the tuple codec; the span timelines themselves (Trace) stay local to
// each process and are joined later by trace ID (see MergeFragments).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// Valid reports whether the context carries a real trace ID (all-zero IDs
// are forbidden by the traceparent spec and mean "no trace here").
func (tc TraceContext) Valid() bool { return tc.TraceID != [16]byte{} }

// Traceparent renders the context in W3C traceparent form:
//
//	00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
func (tc TraceContext) Traceparent() string {
	flags := byte(0)
	if tc.Sampled {
		flags = 1
	}
	return fmt.Sprintf("00-%s-%s-%02x",
		hex.EncodeToString(tc.TraceID[:]), hex.EncodeToString(tc.SpanID[:]), flags)
}

// ParseTraceparent parses a W3C traceparent header produced by
// Traceparent. Unknown versions are accepted as long as the first four
// fields have the version-00 layout (the spec's forward-compat rule).
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < 55 {
		return tc, fmt.Errorf("telemetry: traceparent too short: %q", s)
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("telemetry: malformed traceparent: %q", s)
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(s[0:2])); err != nil {
		return tc, fmt.Errorf("telemetry: bad traceparent version: %q", s)
	}
	if s[0:2] == "ff" {
		return tc, fmt.Errorf("telemetry: forbidden traceparent version ff")
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return tc, fmt.Errorf("telemetry: bad trace id in %q", s)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return tc, fmt.Errorf("telemetry: bad span id in %q", s)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tc, fmt.Errorf("telemetry: bad trace flags in %q", s)
	}
	tc.Sampled = flags[0]&1 != 0
	if !tc.Valid() {
		return tc, fmt.Errorf("telemetry: all-zero trace id in %q", s)
	}
	return tc, nil
}

// newTraceContext mints a fresh context with random IDs and the sampled
// bit set (contexts exist only for sampled tuples).
func newTraceContext() TraceContext {
	var tc TraceContext
	fillRandom(tc.TraceID[:])
	fillRandom(tc.SpanID[:])
	tc.Sampled = true
	return tc
}

// fillRandom fills b from crypto/rand, falling back to a counter-derived
// pattern if the system randomness source is unavailable (IDs only need to
// be unique, not unpredictable).
func fillRandom(b []byte) {
	if _, err := rand.Read(b); err != nil {
		seq := idFallback.Add(1)
		for i := range b {
			b[i] = byte(seq >> (8 * (i % 8)))
		}
		b[0] |= 1 // never all-zero
	}
}
