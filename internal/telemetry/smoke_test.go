// End-to-end exposition smoke test: one running STRATA deployment (manager
// + broker + store + a traced pipeline) served over HTTP must produce a
// valid Prometheus exposition covering all four layers, and a sampled trace
// traversing the pipeline must be retrievable from /debug/traces. The
// Makefile's metrics-smoke target runs exactly this test.
package telemetry_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"strata/internal/core"
	"strata/internal/pubsub"
	"strata/internal/telemetry"
)

func httpGet(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestEndToEndMetricsSmoke(t *testing.T) {
	broker := pubsub.NewBroker()
	defer broker.Close()
	m, err := core.NewManager(t.TempDir(), broker, core.WithDefaultTraceSampling(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A 4-operator pipeline (source → partition → detect → sink) that emits
	// its layers and then stays live until released, so the scrape observes
	// a running deployment.
	release := make(chan struct{})
	delivered := make(chan struct{}, 16)
	p, err := m.Deploy("smoke", func(fw *core.Framework) error {
		src := fw.AddSource("src", func(ctx context.Context, emit func(core.EventTuple) error) error {
			for l := 1; l <= 3; l++ {
				err := emit(core.EventTuple{
					TS:    time.UnixMicro(int64(l) * 1_000_000),
					Job:   "smoke-job",
					Layer: l,
					KV:    map[string]any{"power": float64(l)},
				})
				if err != nil {
					return err
				}
			}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil
		})
		parts := fw.Partition("split", src, func(in core.EventTuple, emit func(core.EventTuple) error) error {
			out := in
			out.Specimen = "spec-1"
			return emit(out)
		})
		events := fw.DetectEvent("detect", parts, func(in core.EventTuple, emit func(core.EventTuple) error) error {
			return emit(in.WithKV("hot", true))
		})
		fw.Deliver("expert", events, func(core.EventTuple) error {
			delivered <- struct{}{}
			return nil
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		if err := p.Wait(); err != nil {
			t.Errorf("pipeline ended with %v", err)
		}
	}()

	// Wait until every layer has traversed the whole pipeline.
	for i := 0; i < 3; i++ {
		select {
		case <-delivered:
		case <-time.After(10 * time.Second):
			t.Fatal("pipeline did not deliver within 10s")
		}
	}

	reg := telemetry.NewRegistry()
	reg.Register(m)
	reg.Register(broker)
	reg.Register(telemetry.GoRuntime{})
	srv, err := telemetry.Serve("127.0.0.1:0", telemetry.NewHandler(reg,
		telemetry.WithPipelines(m.DebugPipelines),
		telemetry.WithTraces(m.Traces)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics: valid exposition covering all four layers plus the runtime.
	text, ctype := httpGet(t, base+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ctype)
	}
	if err := telemetry.ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v\n---\n%s", err, text)
	}
	for layer, marker := range map[string]string{
		"stream":  `strata_stream_op_tuples_out_total{op="src",query="smoke"} 3`,
		"pubsub":  "strata_pubsub_published_total",
		"kvstore": "strata_kvstore_memtable_entries{",
		"core":    `strata_manager_pipeline_status{pipeline="smoke",status="running"} 1`,
		"runtime": "go_goroutines",
	} {
		if !strings.Contains(text, marker) {
			t.Errorf("/metrics missing %s-layer sample %q\n---\n%s", layer, marker, text)
		}
	}

	// /healthz: liveness.
	if body, _ := httpGet(t, base+"/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q, want ok", body)
	}

	// /debug/pipelines: the running pipeline is listed.
	body, _ := httpGet(t, base+"/debug/pipelines")
	var pipes []core.PipelineDebug
	if err := json.Unmarshal([]byte(body), &pipes); err != nil {
		t.Fatalf("/debug/pipelines: %v\n%s", err, body)
	}
	if len(pipes) != 1 || pipes[0].Name != "smoke" || pipes[0].Status != "running" {
		t.Errorf("/debug/pipelines = %+v", pipes)
	}

	// /debug/traces: a sampled trace traversed >= 3 operators with
	// non-zero spans.
	body, _ = httpGet(t, base+"/debug/traces")
	var report struct {
		Count  int                       `json:"count"`
		Traces []telemetry.TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/debug/traces: %v\n%s", err, body)
	}
	if report.Count != 3 {
		t.Fatalf("/debug/traces count = %d, want 3 (every layer sampled)\n%s", report.Count, body)
	}
	tr := report.Traces[0]
	if !tr.Finished || tr.Total <= 0 {
		t.Errorf("slowest trace not finished or zero total: %+v", tr)
	}
	if len(tr.Spans) < 3 {
		t.Fatalf("slowest trace has %d spans, want >= 3: %+v", len(tr.Spans), tr)
	}
	for _, sp := range tr.Spans {
		if sp.Duration <= 0 {
			t.Errorf("span %q has non-positive duration", sp.Op)
		}
	}
	// Connector taps and end-of-layer markers contribute extra spans; the
	// three user-visible stages must all be present.
	ops := make(map[string]bool)
	for _, sp := range tr.Spans {
		ops[sp.Op] = true
	}
	for _, op := range []string{"split", "detect", "expert"} {
		if !ops[op] {
			t.Errorf("trace missing span for %q (spans: %+v)", op, tr.Spans)
		}
	}
}
