// Package telemetry is the stdlib-only metrics and tracing core of the
// STRATA stack. It provides the three instrument kinds every layer records
// into — monotonic counters, gauges, and log-bucketed latency histograms
// with quantile estimation — plus a pull-model registry that renders the
// Prometheus text exposition format, an embeddable HTTP handler
// (/metrics, /healthz, /debug/pipelines, /debug/traces), and a sampled
// per-tuple trace context for end-to-end latency attribution.
//
// Design: instruments are lock-free on the write path (atomics only), so
// recording a sample in an operator's per-tuple loop costs a few atomic
// adds. Reading is pull-based: a Collector walks its instruments at scrape
// time and emits samples into a Writer, which the registry renders. Metric
// names follow the scheme strata_<layer>_<name>_<unit> (see DESIGN.md,
// "Observability").
package telemetry

import (
	"math"
	"sync/atomic"
)

// Label is one name="value" pair attached to a sample.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Collector is anything that can contribute samples to an exposition. All
// layers (stream queries, brokers, stores, managers) implement it; the
// registry calls Collect on every registered collector at scrape time.
type Collector interface {
	Collect(w *Writer)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(w *Writer)

// Collect implements Collector.
func (f CollectorFunc) Collect(w *Writer) { f(w) }

// Counter is a monotonically increasing counter. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. The zero value is ready
// to use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
