package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func TestBoundedCount(t *testing.T) {
	cases := []struct {
		name    string
		query   string
		want    int
		wantErr bool
	}{
		{"absent uses default", "", 16, false},
		{"explicit value", "n=3", 3, false},
		{"large value passes through", "n=100000", 100000, false},
		{"zero rejected", "n=0", 0, true},
		{"negative rejected", "n=-5", 0, true},
		{"non-numeric rejected", "n=abc", 0, true},
		{"float rejected", "n=1.5", 0, true},
		{"overflow rejected", "n=99999999999999999999", 0, true},
		{"empty value uses default", "n=", 16, false},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			r := &http.Request{URL: &url.URL{RawQuery: tt.query}}
			got, err := boundedCount(r, "n", 16)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("boundedCount(%q) = %d, want error", tt.query, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("boundedCount(%q): %v", tt.query, err)
			}
			if got != tt.want {
				t.Errorf("boundedCount(%q) = %d, want %d", tt.query, got, tt.want)
			}
		})
	}
}

func TestDebugTracesBoundRejection(t *testing.T) {
	buf := NewTraceBuffer(4)
	tr := NewTrace(1, "pipe")
	tr.Record("op", time.Millisecond)
	tr.Finish()
	buf.Add(tr)
	h := NewHandler(NewRegistry(), WithTraces(func() []TraceSnapshot { return buf.Slowest(0) }))

	cases := []struct {
		query    string
		wantCode int
	}{
		{"", http.StatusOK},
		{"?n=1", http.StatusOK},
		{"?n=0", http.StatusBadRequest},
		{"?n=-1", http.StatusBadRequest},
		{"?n=bogus", http.StatusBadRequest},
	}
	for _, tt := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces"+tt.query, nil))
		if rec.Code != tt.wantCode {
			t.Errorf("GET /debug/traces%s = %d, want %d (body %q)",
				tt.query, rec.Code, tt.wantCode, rec.Body.String())
		}
	}
}

func TestDebugTraceLookupEndpoint(t *testing.T) {
	buf := NewTraceBuffer(4)
	tr := NewTrace(1, "pipe")
	tr.Record("op", time.Millisecond)
	tr.Finish()
	buf.Add(tr)
	id := tr.Snapshot().TraceID

	h := NewHandler(NewRegistry(), WithTraceLookup(buf.Find))

	get := func(path string) (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := get("/debug/trace/"); code != http.StatusBadRequest {
		t.Errorf("empty id = %d %q, want 400", code, body)
	}
	if code, body := get("/debug/trace/a/b"); code != http.StatusBadRequest {
		t.Errorf("slash in id = %d %q, want 400", code, body)
	}
	if code, body := get("/debug/trace/unknownid"); code != http.StatusNotFound {
		t.Errorf("unknown id = %d %q, want 404", code, body)
	}

	code, body := get("/debug/trace/" + id)
	if code != http.StatusOK {
		t.Fatalf("known id = %d %q, want 200", code, body)
	}
	var rep struct {
		TraceID   string          `json:"trace_id"`
		Count     int             `json:"count"`
		Fragments []TraceSnapshot `json:"fragments"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("decode: %v: %q", err, body)
	}
	if rep.TraceID != id || rep.Count != 1 || len(rep.Fragments) != 1 {
		t.Fatalf("report = %+v, want 1 fragment of %s", rep, id)
	}
	if rep.Fragments[0].Label != "pipe" || len(rep.Fragments[0].Spans) != 1 {
		t.Errorf("fragment = %+v, want label pipe with 1 span", rep.Fragments[0])
	}

	// Without WithTraceLookup the endpoint reports no source.
	bare := NewHandler(NewRegistry())
	rec := httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+id, nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unwired lookup = %d, want 404", rec.Code)
	}
}

func TestProfilingEndpointsGated(t *testing.T) {
	// Off by default: /debug/pprof/ is not mounted.
	off := NewHandler(NewRegistry())
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Errorf("pprof index served without WithProfiling (status %d)", rec.Code)
	}

	on := NewHandler(NewRegistry(), WithProfiling())
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index with WithProfiling = %d, want 200", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index body lacks profile listing: %q", body)
	}
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d, want 200", rec.Code)
	}
}

// TestTraceMetricsExposition registers a TraceBuffer on a registry and
// checks the strata_trace_* series render as valid exposition with the
// buffer's labels attached.
func TestTraceMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	buf := NewTraceBuffer(8).WithLabels(L("query", "q1"))
	reg.Register(buf)

	tr := NewTrace(1, "pipe")
	tr.Record("map", time.Millisecond)
	tr.Record("sink", 2*time.Millisecond)
	tr.Finish()
	buf.Add(tr)

	srv, err := Serve("127.0.0.1:0", NewHandler(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v\n---\n%s", err, body)
	}
	for _, want := range []string{
		`strata_trace_fragments_total{query="q1"} 1`,
		`strata_trace_finished_total{query="q1"} 1`,
		`strata_trace_span_duration_seconds_count{query="q1"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, body)
		}
	}
}
