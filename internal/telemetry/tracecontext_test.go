package telemetry

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := newTraceContext()
	s := tc.Traceparent()
	if len(s) != 55 {
		t.Fatalf("Traceparent() = %q (len %d), want the 55-char version-00 layout", s, len(s))
	}
	if !strings.HasPrefix(s, "00-") || !strings.HasSuffix(s, "-01") {
		t.Fatalf("Traceparent() = %q, want 00-...-01 (sampled)", s)
	}
	got, err := ParseTraceparent(s)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", s, err)
	}
	if got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
}

func TestTraceparentUnsampledFlag(t *testing.T) {
	tc := newTraceContext()
	tc.Sampled = false
	got, err := ParseTraceparent(tc.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled {
		t.Errorf("flags 00 parsed as sampled")
	}
	// Unknown flag bits beyond the sampled bit are tolerated (forward
	// compat); only bit 0 matters.
	s := tc.Traceparent()
	s = s[:53] + "03"
	got, err = ParseTraceparent(s)
	if err != nil {
		t.Fatalf("ParseTraceparent with extra flag bits: %v", err)
	}
	if !got.Sampled {
		t.Errorf("flags 03 parsed as unsampled")
	}
}

func TestTraceparentForwardCompatVersion(t *testing.T) {
	// The spec's forward-compat rule: an unknown (non-ff) version with the
	// version-00 field layout still parses.
	tc := newTraceContext()
	s := "01" + tc.Traceparent()[2:]
	got, err := ParseTraceparent(s)
	if err != nil {
		t.Fatalf("ParseTraceparent(version 01): %v", err)
	}
	if got != tc {
		t.Fatalf("version-01 parse = %+v, want %+v", got, tc)
	}
}

func TestTraceparentRejects(t *testing.T) {
	valid := newTraceContext().Traceparent()
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"no dashes", strings.ReplaceAll(valid, "-", "_")},
		{"bad version hex", "zz" + valid[2:]},
		{"forbidden version ff", "ff" + valid[2:]},
		{"bad trace id hex", valid[:3] + strings.Repeat("g", 32) + valid[35:]},
		{"bad span id hex", valid[:36] + strings.Repeat("g", 16) + valid[52:]},
		{"bad flags hex", valid[:53] + "zz"},
		{"all-zero trace id", valid[:3] + strings.Repeat("0", 32) + valid[35:]},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseTraceparent(tt.in); err == nil {
				t.Errorf("ParseTraceparent(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestContinueTraceLinksFragments(t *testing.T) {
	root := NewTrace(1, "source")
	rc := root.Context()
	if !rc.Valid() || !rc.Sampled {
		t.Fatalf("root context = %+v, want valid+sampled", rc)
	}

	next := ContinueTrace(rc, "downstream")
	nc := next.Context()
	if nc.TraceID != rc.TraceID {
		t.Errorf("continued fragment changed trace ID: %x vs %x", nc.TraceID, rc.TraceID)
	}
	if nc.SpanID == rc.SpanID {
		t.Errorf("continued fragment reused upstream span ID %x", nc.SpanID)
	}
	if !nc.Sampled {
		t.Errorf("continued fragment not sampled")
	}

	rootSnap := root.Snapshot()
	nextSnap := next.Snapshot()
	if nextSnap.TraceID != rootSnap.TraceID {
		t.Errorf("snapshot trace IDs differ: %s vs %s", nextSnap.TraceID, rootSnap.TraceID)
	}
	if nextSnap.ParentSpanID != rootSnap.SpanID {
		t.Errorf("ParentSpanID = %q, want upstream span %q", nextSnap.ParentSpanID, rootSnap.SpanID)
	}
	if rootSnap.ParentSpanID != "" {
		t.Errorf("root fragment has ParentSpanID %q, want none", rootSnap.ParentSpanID)
	}
	if nextSnap.Label != "downstream" {
		t.Errorf("label = %q, want downstream", nextSnap.Label)
	}
}

func TestFillRandomNeverZero(t *testing.T) {
	// Even the fallback path must never produce the forbidden all-zero ID;
	// here we just check the normal path mints distinct, valid contexts.
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tc := newTraceContext()
		if !tc.Valid() {
			t.Fatal("newTraceContext minted an all-zero trace ID")
		}
		s := tc.Traceparent()
		if seen[s] {
			t.Fatalf("duplicate context %s", s)
		}
		seen[s] = true
	}
}
