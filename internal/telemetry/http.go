package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// handlerOptions configures NewHandler's debug endpoints.
type handlerOptions struct {
	pipelines func() any
	traces    func() []TraceSnapshot
}

// HandlerOption customizes NewHandler.
type HandlerOption func(*handlerOptions)

// WithPipelines wires /debug/pipelines to f; the returned value is
// rendered as JSON (typically a []core.PipelineDebug).
func WithPipelines(f func() any) HandlerOption {
	return func(o *handlerOptions) { o.pipelines = f }
}

// WithTraces wires /debug/traces to f, which should return the traces to
// expose, slowest first (see TraceBuffer.Slowest).
func WithTraces(f func() []TraceSnapshot) HandlerOption {
	return func(o *handlerOptions) { o.traces = f }
}

// NewHandler returns the telemetry HTTP surface over reg:
//
//	/metrics          Prometheus text exposition of every registered collector
//	/healthz          liveness ("ok")
//	/debug/pipelines  JSON pipeline summaries (when wired with WithPipelines)
//	/debug/traces     JSON slowest recent traces (when wired with WithTraces;
//	                  ?n=K bounds the count, default 16)
func NewHandler(reg *Registry, opts ...HandlerOption) http.Handler {
	var o handlerOptions
	for _, f := range opts {
		f(&o)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pipelines", func(w http.ResponseWriter, r *http.Request) {
		if o.pipelines == nil {
			http.Error(w, "no pipeline source configured", http.StatusNotFound)
			return
		}
		writeJSON(w, o.pipelines())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if o.traces == nil {
			http.Error(w, "no trace source configured", http.StatusNotFound)
			return
		}
		n := 16
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		traces := o.traces()
		if len(traces) > n {
			traces = traces[:n]
		}
		writeJSON(w, traceReport{Count: len(traces), Traces: traces})
	})
	return mux
}

// traceReport shapes the /debug/traces response.
type traceReport struct {
	Count  int             `json:"count"`
	Traces []TraceSnapshot `json:"traces"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Response already started; nothing sensible left to report.
		return
	}
}

// Server is a minimal HTTP server wrapper around a telemetry handler with
// a clean shutdown path, so binaries can expose metrics with one call.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
}

// Serve listens on addr (":9090", "127.0.0.1:0", ...) and serves h until
// Close is called.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed (and listener-closed races) are the normal
		// shutdown path, not reportable failures.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}
