package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// handlerOptions configures NewHandler's debug endpoints.
type handlerOptions struct {
	pipelines   func() any
	traces      func() []TraceSnapshot
	traceLookup func(id string) []TraceSnapshot
	readiness   func() error
	profiling   bool
}

// HandlerOption customizes NewHandler.
type HandlerOption func(*handlerOptions)

// WithPipelines wires /debug/pipelines to f; the returned value is
// rendered as JSON (typically a []core.PipelineDebug).
func WithPipelines(f func() any) HandlerOption {
	return func(o *handlerOptions) { o.pipelines = f }
}

// WithTraces wires /debug/traces to f, which should return the traces to
// expose, slowest first (see TraceBuffer.Slowest).
func WithTraces(f func() []TraceSnapshot) HandlerOption {
	return func(o *handlerOptions) { o.traces = f }
}

// WithTraceLookup wires /debug/trace/<hex trace id> to f, which returns
// this process's span fragments for that trace (see TraceBuffer.Find).
// The strata-trace join tool fans the same GET across every process of a
// deployment and merges the fragments into one timeline.
func WithTraceLookup(f func(id string) []TraceSnapshot) HandlerOption {
	return func(o *handlerOptions) { o.traceLookup = f }
}

// WithReadiness wires /readyz to f. Liveness (/healthz) answers "is the
// process up"; readiness answers "is it safe to send work here" — pipelines
// built, subscriptions restored, stores open. f returns nil when ready and
// a descriptive error otherwise; the error text becomes the 503 body, so a
// probe log says *what* the process is still waiting on.
func WithReadiness(f func() error) HandlerOption {
	return func(o *handlerOptions) { o.readiness = f }
}

// WithProfiling mounts the stdlib net/http/pprof handlers under
// /debug/pprof/ on the telemetry mux. Off by default: live profiling on a
// production metrics port is opt-in per binary (see each cmd's -pprof
// flag), while `make profile` captures offline profiles without it.
func WithProfiling() HandlerOption {
	return func(o *handlerOptions) { o.profiling = true }
}

// NewHandler returns the telemetry HTTP surface over reg:
//
//	/metrics          Prometheus text exposition of every registered collector
//	/healthz          liveness ("ok")
//	/readyz           readiness (200 "ok" / 503 reason, with WithReadiness;
//	                  404 when the binary wired no readiness source)
//	/debug/pipelines  JSON pipeline summaries (when wired with WithPipelines)
//	/debug/traces     JSON slowest recent traces (when wired with WithTraces;
//	                  ?n=K bounds the count, default 16)
//	/debug/trace/<id> JSON span fragments of one trace (WithTraceLookup)
//	/debug/pprof/*    stdlib profiling handlers (only with WithProfiling)
func NewHandler(reg *Registry, opts ...HandlerOption) http.Handler {
	var o handlerOptions
	for _, f := range opts {
		f(&o)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if o.readiness == nil {
			http.Error(w, "no readiness source configured", http.StatusNotFound)
			return
		}
		if err := o.readiness(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pipelines", func(w http.ResponseWriter, r *http.Request) {
		if o.pipelines == nil {
			http.Error(w, "no pipeline source configured", http.StatusNotFound)
			return
		}
		writeJSON(w, o.pipelines())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if o.traces == nil {
			http.Error(w, "no trace source configured", http.StatusNotFound)
			return
		}
		n, err := boundedCount(r, "n", 16)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		traces := o.traces()
		if len(traces) > n {
			traces = traces[:n]
		}
		writeJSON(w, traceReport{Count: len(traces), Traces: traces})
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		if o.traceLookup == nil {
			http.Error(w, "no trace source configured", http.StatusNotFound)
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, "want /debug/trace/<hex trace id>", http.StatusBadRequest)
			return
		}
		frags := o.traceLookup(id)
		if len(frags) == 0 {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		writeJSON(w, fragmentReport{TraceID: id, Count: len(frags), Fragments: frags})
	})
	if o.profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// boundedCount parses an optional positive integer query parameter,
// rejecting non-numeric and non-positive values uniformly: a malformed
// bound is a 400, never a silent fallback that masks a caller bug.
func boundedCount(r *http.Request, param string, def int) (int, error) {
	s := r.URL.Query().Get(param)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("query parameter %s=%q is not an integer", param, s)
	}
	if v <= 0 {
		return 0, fmt.Errorf("query parameter %s=%d must be positive", param, v)
	}
	return v, nil
}

// fragmentReport shapes the /debug/trace/<id> response.
type fragmentReport struct {
	TraceID   string          `json:"trace_id"`
	Count     int             `json:"count"`
	Fragments []TraceSnapshot `json:"fragments"`
}

// traceReport shapes the /debug/traces response.
type traceReport struct {
	Count  int             `json:"count"`
	Traces []TraceSnapshot `json:"traces"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Response already started; nothing sensible left to report.
		return
	}
}

// Server is a minimal HTTP server wrapper around a telemetry handler with
// a clean shutdown path, so binaries can expose metrics with one call.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
}

// Serve listens on addr (":9090", "127.0.0.1:0", ...) and serves h until
// Close is called.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed (and listener-closed races) are the normal
		// shutdown path, not reportable failures.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}
