package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition checks that text is well-formed Prometheus text
// exposition format (version 0.0.4): every non-comment line is
// `name{labels} value`, names are legal, every sample's family has a TYPE
// line, label values are quoted, and histogram families come with _sum and
// _count. It is a line-oriented validator — no external scrape library —
// used by the metrics-smoke test and available for debugging hand-rolled
// collectors. Returns nil for valid input.
func ValidateExposition(text string) error {
	types := map[string]string{} // family name -> declared type
	samples := 0
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
			}
			if _, dup := types[fields[2]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or free comment
		}
		name, rest, err := splitName(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := checkMetricName(name); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := checkLabelsAndValue(rest); err != nil {
			return fmt.Errorf("line %d: %w: %q", lineNo, err, line)
		}
		family := familyOf(name, types)
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

// splitName cuts the metric name off a sample line, returning the rest
// (labels and value).
func splitName(line string) (name, rest string, err error) {
	end := strings.IndexAny(line, "{ ")
	if end <= 0 {
		return "", "", fmt.Errorf("malformed sample line: %q", line)
	}
	return line[:end], line[end:], nil
}

// familyOf strips histogram/summary suffixes when the base family is
// declared.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if t, declared := types[base]; declared && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return name
}

func checkMetricName(name string) error {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelsAndValue validates the `{k="v",...} value` tail of a sample.
func checkLabelsAndValue(rest string) error {
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated label set")
		}
		if err := checkLabels(rest[1:end]); err != nil {
			return err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A sample may carry an optional trailing timestamp; this stack never
	// emits one, so require a single value field.
	if rest == "" {
		return fmt.Errorf("missing sample value")
	}
	switch rest {
	case "+Inf", "-Inf", "NaN":
		return nil
	}
	if _, err := strconv.ParseFloat(rest, 64); err != nil {
		return fmt.Errorf("bad sample value %q", rest)
	}
	return nil
}

func checkLabels(s string) error {
	if s == "" {
		return nil
	}
	// Split on `",` boundaries — label values may contain escaped quotes
	// and commas, so a plain comma split is not safe.
	rest := s
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair near %q", rest)
		}
		key := rest[:eq]
		for i, r := range key {
			ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(i > 0 && r >= '0' && r <= '9')
			if !ok {
				return fmt.Errorf("invalid label name %q", key)
			}
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value near %q", rest)
		}
		rest = rest[1:]
		// Scan to the closing quote, honouring escapes.
		closed := false
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
		}
		if !closed {
			return fmt.Errorf("unterminated label value")
		}
		if rest == "" {
			return nil
		}
		if !strings.HasPrefix(rest, ",") {
			return fmt.Errorf("expected ',' between labels near %q", rest)
		}
		rest = rest[1:]
	}
	return nil
}
