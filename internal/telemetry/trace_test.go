package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndFinish(t *testing.T) {
	tr := NewTrace(1, "pipe")
	tr.Record("src", 2*time.Millisecond)
	tr.Record("map", 0) // floored to 1ns, never invisible
	if !tr.Finish() {
		t.Fatal("first Finish returned false")
	}
	if tr.Finish() {
		t.Fatal("second Finish returned true; must be idempotent")
	}
	s := tr.Snapshot()
	if !s.Finished || s.Total <= 0 {
		t.Fatalf("snapshot not finished: %+v", s)
	}
	if len(s.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(s.Spans))
	}
	for _, sp := range s.Spans {
		if sp.Duration <= 0 {
			t.Errorf("span %s has non-positive duration %v", sp.Op, sp.Duration)
		}
		if sp.Start < 0 {
			t.Errorf("span %s has negative start %v", sp.Op, sp.Start)
		}
	}
	// Records after Finish are dropped: the trace is already reported.
	tr.Record("late", time.Millisecond)
	if got := len(tr.Snapshot().Spans); got != 2 {
		t.Errorf("spans after late record = %d, want 2", got)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Record("op", time.Millisecond) // must not panic
	if tr.Finish() {
		t.Error("nil Finish returned true")
	}
}

func TestTraceBufferSlowestAndRecent(t *testing.T) {
	b := NewTraceBuffer(4)
	mk := func(id uint64, total time.Duration) *Trace {
		tr := NewTrace(id, "q")
		tr.mu.Lock()
		tr.finished = true
		tr.total = total
		tr.mu.Unlock()
		return tr
	}
	for i := 1; i <= 6; i++ {
		b.Add(mk(uint64(i), time.Duration(i)*time.Millisecond))
	}
	if got := b.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (ring capacity)", got)
	}
	slow := b.Slowest(2)
	if len(slow) != 2 || slow[0].ID != 6 || slow[1].ID != 5 {
		t.Fatalf("Slowest(2) = %+v, want ids 6,5", slow)
	}
	recent := b.Recent(3)
	if len(recent) != 3 || recent[0].ID != 6 || recent[1].ID != 5 || recent[2].ID != 4 {
		t.Fatalf("Recent(3) ids = %v, want 6,5,4", []uint64{recent[0].ID, recent[1].ID, recent[2].ID})
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(3)
	var hits int
	for i := 0; i < 30; i++ {
		if _, ok := s.Sample(); ok {
			hits++
		}
	}
	if hits != 10 {
		t.Errorf("1-in-3 sampler hit %d of 30, want 10", hits)
	}
	if _, ok := NewSampler(0).Sample(); ok {
		t.Error("disabled sampler sampled")
	}
	var nilS *Sampler
	if _, ok := nilS.Sample(); ok {
		t.Error("nil sampler sampled")
	}
	// Ids are unique across concurrent samplers of the same instance.
	s2 := NewSampler(1)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id, ok := s2.Sample()
				if !ok {
					t.Error("1-in-1 sampler skipped")
					return
				}
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate trace id %d", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace(9, "fanout")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record("op", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Snapshot().Spans); got != 8*200 {
		t.Fatalf("spans = %d, want %d", got, 8*200)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace(10, "wide-fanout")
	for i := 0; i < maxSpansPerTrace+50; i++ {
		tr.Record("cell", time.Microsecond)
	}
	tr.Finish()
	snap := tr.Snapshot()
	if len(snap.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want cap %d", len(snap.Spans), maxSpansPerTrace)
	}
	if snap.DroppedSpans != 50 {
		t.Fatalf("DroppedSpans = %d, want 50", snap.DroppedSpans)
	}
}
