package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileAgainstReference records a known distribution and
// checks the estimated quantiles against the exact empirical quantiles,
// within the bucket-boundary error bound (one growth factor).
func TestHistogramQuantileAgainstReference(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(7))
	h := NewDurationHistogram()
	samples := make([]float64, n)
	for i := range samples {
		// Log-normal-ish latencies spanning ~1µs .. ~1s.
		v := math.Exp(rng.NormFloat64()*2 - 8)
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)
	snap := h.Snapshot()
	if snap.Count != n {
		t.Fatalf("Count = %d, want %d", snap.Count, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := snap.Quantile(q)
		exact := samples[int(q*float64(n))-1]
		// A log-bucketed histogram with growth factor 2 pins every sample
		// within its bucket, so the estimate is within a factor of 2 of
		// the exact quantile.
		if got < exact/2 || got > exact*2 {
			t.Errorf("Quantile(%v) = %v, exact %v: outside bucket error bound", q, got, exact)
		}
	}
	if got, want := snap.Max, samples[n-1]; got != want {
		t.Errorf("Max = %v, want %v", got, want)
	}
	wantSum := 0.0
	for _, v := range samples {
		wantSum += v
	}
	if math.Abs(snap.Sum-wantSum)/wantSum > 1e-9 {
		t.Errorf("Sum = %v, want %v", snap.Sum, wantSum)
	}
}

// TestHistogramBucketBoundaries pins the bucket-assignment edge cases:
// exact boundary values land in the lower bucket (le is inclusive),
// and out-of-range values are clamped, not lost.
func TestHistogramBucketBoundaries(t *testing.T) {
	// Bounds 1, 2, 4, 8.
	for _, tc := range []struct {
		v      float64
		bucket int // -1 = overflow
	}{
		{0, 0}, {0.5, 0}, {1, 0},
		{1.0000001, 1}, {2, 1},
		{2.1, 2}, {4, 2},
		{8, 3},
		{8.1, -1}, {1e9, -1},
		{-5, 0},         // clamped to 0
		{math.NaN(), 0}, // clamped to 0
	} {
		h2 := NewHistogram(1, 2, 4)
		h2.Observe(tc.v)
		s := h2.Snapshot()
		if tc.bucket == -1 {
			if s.Overflow != 1 {
				t.Errorf("Observe(%v): overflow = %d, want 1", tc.v, s.Overflow)
			}
			continue
		}
		if s.Counts[tc.bucket] != 1 {
			t.Errorf("Observe(%v): counts = %v overflow=%d, want bucket %d", tc.v, s.Counts, s.Overflow, tc.bucket)
		}
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	h := NewDurationHistogram()
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	h.ObserveDuration(3 * time.Millisecond)
	s = h.Snapshot()
	if got := s.Quantile(0.5); got > 0.003*2 || got <= 0 {
		t.Errorf("single-sample p50 = %v, want within (0, 0.006]", got)
	}
	if got := s.Max; got != 0.003 {
		t.Errorf("Max = %v, want 0.003", got)
	}
}

// TestHistogramQuantileNeverExceedsMax guards the interpolation clamp: a
// p99 estimate interpolated inside the top occupied bucket must not report
// beyond the observed maximum.
func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	h := NewDurationHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(0.010) // all samples identical, mid-bucket
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got := s.Quantile(q); got > s.Max {
			t.Errorf("Quantile(%v) = %v exceeds Max %v", q, got, s.Max)
		}
	}
}

// TestHistogramConcurrentRecording hammers one histogram from many
// goroutines under -race and checks no sample is lost.
func TestHistogramConcurrentRecording(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
	)
	h := NewDurationHistogram()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Observe(rng.Float64() * 0.1)
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Fatalf("Count = %d, want %d", s.Count, workers*perW)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	total += s.Overflow
	if total != workers*perW {
		t.Fatalf("bucket sum = %d, want %d", total, workers*perW)
	}
	if s.Max > 0.1 || s.Max <= 0 {
		t.Errorf("Max = %v, want within (0, 0.1]", s.Max)
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Gauge = %v, want 1.5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 42+4000 {
		t.Errorf("Counter after concurrency = %d, want %d", got, 42+4000)
	}
	if got := g.Value(); got != 1.5+4000 {
		t.Errorf("Gauge after concurrency = %v, want %v", got, 1.5+4000)
	}
}
