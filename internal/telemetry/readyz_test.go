package telemetry

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// TestReadyzEndpoint covers the three /readyz states: unconfigured (404),
// not ready (503 with the reason as body), and ready (200 ok) — and that
// /healthz stays 200 throughout, since liveness and readiness answer
// different questions.
func TestReadyzEndpoint(t *testing.T) {
	get := func(base, path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// Unconfigured: a binary that wired no readiness source 404s, so probes
	// can tell "no such check" apart from "not ready".
	bare, err := Serve("127.0.0.1:0", NewHandler(NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code, _ := get("http://"+bare.Addr(), "/readyz"); code != http.StatusNotFound {
		t.Errorf("unconfigured /readyz = %d, want 404", code)
	}

	var ready atomic.Bool
	srv, err := Serve("127.0.0.1:0", NewHandler(NewRegistry(),
		WithReadiness(func() error {
			if !ready.Load() {
				return errors.New("pipeline not built")
			}
			return nil
		}),
	))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(base, "/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "pipeline not built") {
		t.Errorf("not-ready /readyz = %d %q, want 503 with reason", code, body)
	}
	if code, body := get(base, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz while not ready = %d %q, want 200 ok", code, body)
	}

	ready.Store(true)
	if code, body := get(base, "/readyz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("ready /readyz = %d %q, want 200 ok", code, body)
	}
}
