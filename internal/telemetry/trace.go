package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a sampled per-tuple trace context: an operator-by-operator span
// timeline carried on a tuple as it traverses a pipeline. A Trace is
// created at a source (see Sampler), shared by pointer across every copy
// of the tuple (including fan-outs, which is why recording locks), and
// finished when a tuple carrying it reaches a sink.
type Trace struct {
	id    uint64
	label string
	start time.Time

	mu       sync.Mutex
	spans    []Span
	dropped  int
	total    time.Duration
	finished bool
}

// Span is one operator's contribution to a trace.
type Span struct {
	// Op is the operator name.
	Op string `json:"op"`
	// Start is the span's offset from the trace's start.
	Start time.Duration `json:"start_ns"`
	// Duration is the operator's service time for the traced tuple.
	Duration time.Duration `json:"duration_ns"`
}

// NewTrace starts a trace. label identifies the originating pipeline or
// source for display; id disambiguates traces with equal labels.
func NewTrace(id uint64, label string) *Trace {
	return &Trace{id: id, label: label, start: time.Now()}
}

// ID returns the trace's identifier.
func (t *Trace) ID() uint64 { return t.id }

// maxSpansPerTrace bounds one trace's span timeline: a traced layer tuple
// that partitions into thousands of cells shares its trace with every
// derived tuple, and without a cap a single sample could hold a span per
// cell per operator. The earliest spans are kept; Snapshot reports how
// many were dropped.
const maxSpansPerTrace = 4096

// Record appends a span for op that finished now and took d. Durations
// below the clock's resolution are floored to 1ns so a recorded span is
// never indistinguishable from an absent one.
func (t *Trace) Record(op string, d time.Duration) {
	if t == nil {
		return
	}
	if d <= 0 {
		d = 1
	}
	end := time.Since(t.start)
	start := end - d
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	if !t.finished {
		if len(t.spans) < maxSpansPerTrace {
			t.spans = append(t.spans, Span{Op: op, Start: start, Duration: d})
		} else {
			t.dropped++
		}
	}
	t.mu.Unlock()
}

// Finish seals the trace with its end-to-end duration. Only the first
// Finish wins (a tuple duplicated by a fan-out reaches several sinks); it
// reports whether this call was the one that sealed the trace.
func (t *Trace) Finish() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return false
	}
	t.finished = true
	t.total = time.Since(t.start)
	return true
}

// Snapshot returns an immutable copy of the trace.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{
		ID:           t.id,
		Label:        t.label,
		Start:        t.start,
		Total:        t.total,
		Finished:     t.finished,
		Spans:        append([]Span(nil), t.spans...),
		DroppedSpans: t.dropped,
	}
	return s
}

// TraceSnapshot is a finished (or in-flight) trace for reporting.
type TraceSnapshot struct {
	ID       uint64        `json:"id"`
	Label    string        `json:"label"`
	Start    time.Time     `json:"start"`
	Total    time.Duration `json:"total_ns"`
	Finished bool          `json:"finished"`
	Spans    []Span        `json:"spans"`
	// DroppedSpans counts spans discarded after the per-trace cap
	// (maxSpansPerTrace) was reached.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// TraceBuffer retains the most recently finished traces in a ring, so the
// slowest recent traces stay queryable without unbounded memory. Safe for
// concurrent use.
type TraceBuffer struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	size int
}

// DefaultTraceCapacity is the ring size used when none is given.
const DefaultTraceCapacity = 128

// NewTraceBuffer creates a buffer retaining the last n finished traces
// (DefaultTraceCapacity when n <= 0).
func NewTraceBuffer(n int) *TraceBuffer {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &TraceBuffer{buf: make([]*Trace, n)}
}

// Add inserts a finished trace, evicting the oldest when full.
func (b *TraceBuffer) Add(t *Trace) {
	if t == nil {
		return
	}
	b.mu.Lock()
	b.buf[b.next] = t
	b.next = (b.next + 1) % len(b.buf)
	if b.size < len(b.buf) {
		b.size++
	}
	b.mu.Unlock()
}

// Len returns how many traces are buffered.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size
}

// Slowest returns up to k buffered traces sorted by total duration,
// slowest first — the per-tuple evidence behind a latency regression.
func (b *TraceBuffer) Slowest(k int) []TraceSnapshot {
	snaps := b.all()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Total > snaps[j].Total })
	if k > 0 && len(snaps) > k {
		snaps = snaps[:k]
	}
	return snaps
}

// Recent returns up to k buffered traces, most recently finished first.
func (b *TraceBuffer) Recent(k int) []TraceSnapshot {
	b.mu.Lock()
	var out []TraceSnapshot
	for i := 0; i < b.size; i++ {
		// Walk backwards from the most recently written slot.
		idx := (b.next - 1 - i + len(b.buf)*2) % len(b.buf)
		if t := b.buf[idx]; t != nil {
			out = append(out, t.Snapshot())
		}
		if k > 0 && len(out) >= k {
			break
		}
	}
	b.mu.Unlock()
	return out
}

func (b *TraceBuffer) all() []TraceSnapshot {
	b.mu.Lock()
	out := make([]TraceSnapshot, 0, b.size)
	for _, t := range b.buf {
		if t != nil {
			out = append(out, t.Snapshot())
		}
	}
	b.mu.Unlock()
	return out
}

// Sampler decides which tuples get a trace: 1 in every N, deterministic
// and contention-free. The zero value samples nothing.
type Sampler struct {
	n   uint64
	ctr atomic.Uint64
	ids atomic.Uint64
}

// NewSampler creates a sampler tracing one in every n tuples (n <= 0
// disables sampling; n == 1 traces everything).
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return &Sampler{}
	}
	return &Sampler{n: uint64(n)}
}

// Sample reports whether the current tuple should carry a trace, and if
// so returns a fresh trace id.
func (s *Sampler) Sample() (uint64, bool) {
	if s == nil || s.n == 0 {
		return 0, false
	}
	if s.ctr.Add(1)%s.n != 0 {
		return 0, false
	}
	return s.ids.Add(1), true
}
