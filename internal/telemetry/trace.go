package telemetry

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a sampled per-tuple trace context: an operator-by-operator span
// timeline carried on a tuple as it traverses a pipeline. A Trace is
// created at a source (see Sampler), shared by pointer across every copy
// of the tuple (including fan-outs, which is why recording locks), and
// finished when a tuple carrying it reaches a sink.
//
// Each Trace is one *fragment* of a possibly cross-process trace: the
// TraceContext (trace ID, span ID, sampled bit) travels with the tuple
// through the tuple codec and the pubsub frame header, and every process
// that continues the tuple records its own fragment under the same trace
// ID (ContinueTrace). Fragments are joined offline by that ID — see
// MergeFragments and the strata-trace command.
type Trace struct {
	id     uint64
	label  string
	start  time.Time
	tc     TraceContext
	parent [8]byte // span ID of the upstream fragment, zero at the root

	// filed/observed make TraceBuffer.Add idempotent: a fragment can be
	// filed early (a connector tap publishing the tuple onward) and again
	// when a local sink finishes it.
	filed    atomic.Bool
	observed atomic.Bool

	mu       sync.Mutex
	spans    []Span
	dropped  int
	total    time.Duration
	finished bool
}

// Span is one operator's contribution to a trace.
type Span struct {
	// Op is the operator name.
	Op string `json:"op"`
	// Start is the span's offset from the trace's start.
	Start time.Duration `json:"start_ns"`
	// Duration is the operator's service time for the traced tuple.
	Duration time.Duration `json:"duration_ns"`
}

// NewTrace starts a root trace with a fresh random TraceContext. label
// identifies the originating pipeline or source for display; id
// disambiguates traces with equal labels within one process.
func NewTrace(id uint64, label string) *Trace {
	return &Trace{id: id, label: label, start: time.Now(), tc: newTraceContext()}
}

// ContinueTrace starts a local fragment of a trace begun elsewhere: it
// keeps the upstream trace ID, remembers the upstream span ID as its
// parent, and mints a fresh span ID for this fragment. It is what the
// tuple codec and broker call when a trace context arrives over the wire.
func ContinueTrace(tc TraceContext, label string) *Trace {
	t := &Trace{label: label, start: time.Now()}
	t.tc.TraceID = tc.TraceID
	t.parent = tc.SpanID
	fillRandom(t.tc.SpanID[:])
	t.tc.Sampled = true
	return t
}

// ID returns the trace's identifier.
func (t *Trace) ID() uint64 { return t.id }

// Context returns the fragment's cross-process context — what downstream
// processes should continue from. Its SpanID names this fragment, so a
// receiver's parent pointer leads back here.
func (t *Trace) Context() TraceContext { return t.tc }

// Relabel renames the fragment (e.g. once the consuming source knows its
// own name); a no-op on nil.
func (t *Trace) Relabel(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// maxSpansPerTrace bounds one trace's span timeline: a traced layer tuple
// that partitions into thousands of cells shares its trace with every
// derived tuple, and without a cap a single sample could hold a span per
// cell per operator. The earliest spans are kept; Snapshot reports how
// many were dropped.
const maxSpansPerTrace = 4096

// Record appends a span for op that finished now and took d. Durations
// below the clock's resolution are floored to 1ns so a recorded span is
// never indistinguishable from an absent one.
func (t *Trace) Record(op string, d time.Duration) {
	if t == nil {
		return
	}
	if d <= 0 {
		d = 1
	}
	end := time.Since(t.start)
	start := end - d
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	if !t.finished {
		if len(t.spans) < maxSpansPerTrace {
			t.spans = append(t.spans, Span{Op: op, Start: start, Duration: d})
		} else {
			t.dropped++
		}
	}
	t.mu.Unlock()
}

// Finish seals the trace with its end-to-end duration. Only the first
// Finish wins (a tuple duplicated by a fan-out reaches several sinks); it
// reports whether this call was the one that sealed the trace.
func (t *Trace) Finish() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return false
	}
	t.finished = true
	t.total = time.Since(t.start)
	return true
}

// processName labels every fragment snapshot with the binary that
// recorded it, so merged cross-process timelines read "which process did
// what" without extra plumbing.
var processName = filepath.Base(os.Args[0])

// Snapshot returns an immutable copy of the trace.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{
		ID:           t.id,
		Label:        t.label,
		Start:        t.start,
		Total:        t.total,
		Finished:     t.finished,
		Spans:        append([]Span(nil), t.spans...),
		DroppedSpans: t.dropped,
		TraceID:      hex.EncodeToString(t.tc.TraceID[:]),
		SpanID:       hex.EncodeToString(t.tc.SpanID[:]),
		PID:          os.Getpid(),
		Process:      processName,
	}
	if t.parent != [8]byte{} {
		s.ParentSpanID = hex.EncodeToString(t.parent[:])
	}
	return s
}

// TraceSnapshot is a finished (or in-flight) trace fragment for reporting.
// The JSON form round-trips through /debug/trace/<id> into the strata-trace
// join tool.
type TraceSnapshot struct {
	ID       uint64        `json:"id"`
	Label    string        `json:"label"`
	Start    time.Time     `json:"start"`
	Total    time.Duration `json:"total_ns"`
	Finished bool          `json:"finished"`
	Spans    []Span        `json:"spans"`
	// DroppedSpans counts spans discarded after the per-trace cap
	// (maxSpansPerTrace) was reached.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// TraceID/SpanID identify this fragment across processes; ParentSpanID
	// is the fragment the tuple arrived from ("" at the root).
	TraceID      string `json:"trace_id,omitempty"`
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// PID and Process say which OS process recorded the fragment.
	PID     int    `json:"pid,omitempty"`
	Process string `json:"process,omitempty"`
}

// TraceBuffer retains the most recently finished traces in a ring, so the
// slowest recent traces stay queryable without unbounded memory. Safe for
// concurrent use.
type TraceBuffer struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	size int

	// Aggregates over everything ever filed (not just the ring), exported
	// as the strata_trace_* series via Collect.
	spanDur   *Histogram
	fragments atomic.Uint64
	finished  atomic.Uint64

	labels []Label // attached to every Collect emission
}

// DefaultTraceCapacity is the ring size used when none is given.
const DefaultTraceCapacity = 128

// NewTraceBuffer creates a buffer retaining the last n finished traces
// (DefaultTraceCapacity when n <= 0).
func NewTraceBuffer(n int) *TraceBuffer {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &TraceBuffer{buf: make([]*Trace, n), spanDur: NewDurationHistogram()}
}

// WithLabels attaches labels to every metric the buffer emits through
// Collect (e.g. the owning query's name, so several buffers registered on
// one registry stay distinct series). Returns b for chaining at
// construction; not safe to call concurrently with Collect.
func (b *TraceBuffer) WithLabels(labels ...Label) *TraceBuffer {
	b.labels = labels
	return b
}

// Add files a trace fragment, evicting the oldest when full. Filing is
// idempotent per fragment: a connector tap may file a still-running trace
// when the tuple leaves the process, and the sink that later finishes it
// files it again — the ring keeps one entry, and the span metrics are
// observed once, when the fragment is first seen sealed.
func (b *TraceBuffer) Add(t *Trace) {
	if t == nil {
		return
	}
	if !t.filed.Swap(true) {
		b.fragments.Add(1)
		b.mu.Lock()
		b.buf[b.next] = t
		b.next = (b.next + 1) % len(b.buf)
		if b.size < len(b.buf) {
			b.size++
		}
		b.mu.Unlock()
	}
	t.mu.Lock()
	sealed := t.finished
	t.mu.Unlock()
	if sealed && !t.observed.Swap(true) {
		b.finished.Add(1)
		snap := t.Snapshot()
		for _, sp := range snap.Spans {
			b.spanDur.ObserveDuration(sp.Duration)
		}
	}
}

// Find returns every buffered fragment whose hex trace ID equals id —
// the per-process half of cross-process trace assembly, served by the
// /debug/trace/<id> endpoint.
func (b *TraceBuffer) Find(id string) []TraceSnapshot {
	var out []TraceSnapshot
	for _, s := range b.all() {
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	return out
}

// Collect implements Collector: span-duration and fragment-count series
// for this buffer, labeled per WithLabels.
func (b *TraceBuffer) Collect(w *Writer) {
	w.Counter("strata_trace_fragments_total",
		"Trace fragments filed in this process's trace buffer.",
		float64(b.fragments.Load()), b.labels...)
	w.Counter("strata_trace_finished_total",
		"Trace fragments sealed by a sink in this process.",
		float64(b.finished.Load()), b.labels...)
	w.Histogram("strata_trace_span_duration_seconds",
		"Operator service time per span of sampled traces.",
		b.spanDur.Snapshot(), b.labels...)
}

// Len returns how many traces are buffered.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size
}

// Slowest returns up to k buffered traces sorted by total duration,
// slowest first — the per-tuple evidence behind a latency regression.
func (b *TraceBuffer) Slowest(k int) []TraceSnapshot {
	snaps := b.all()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Total > snaps[j].Total })
	if k > 0 && len(snaps) > k {
		snaps = snaps[:k]
	}
	return snaps
}

// Recent returns up to k buffered traces, most recently finished first.
func (b *TraceBuffer) Recent(k int) []TraceSnapshot {
	b.mu.Lock()
	var out []TraceSnapshot
	for i := 0; i < b.size; i++ {
		// Walk backwards from the most recently written slot.
		idx := (b.next - 1 - i + len(b.buf)*2) % len(b.buf)
		if t := b.buf[idx]; t != nil {
			out = append(out, t.Snapshot())
		}
		if k > 0 && len(out) >= k {
			break
		}
	}
	b.mu.Unlock()
	return out
}

func (b *TraceBuffer) all() []TraceSnapshot {
	b.mu.Lock()
	out := make([]TraceSnapshot, 0, b.size)
	for _, t := range b.buf {
		if t != nil {
			out = append(out, t.Snapshot())
		}
	}
	b.mu.Unlock()
	return out
}

// Sampler decides which tuples get a trace: 1 in every N, deterministic
// and contention-free. The zero value samples nothing.
type Sampler struct {
	n   uint64
	ctr atomic.Uint64
	ids atomic.Uint64
}

// NewSampler creates a sampler tracing one in every n tuples (n <= 0
// disables sampling; n == 1 traces everything).
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return &Sampler{}
	}
	return &Sampler{n: uint64(n)}
}

// Sample reports whether the current tuple should carry a trace, and if
// so returns a fresh trace id.
func (s *Sampler) Sample() (uint64, bool) {
	if s == nil || s.n == 0 {
		return 0, false
	}
	if s.ctr.Add(1)%s.n != 0 {
		return 0, false
	}
	return s.ids.Add(1), true
}
