package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricType is the exposition TYPE of one family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// sample is one rendered time series value.
type sample struct {
	labels []Label
	value  float64
	hist   *HistogramSnapshot // set for histogram families
}

// family groups the samples of one metric name.
type family struct {
	name string
	help string
	typ  metricType
	rows []sample
}

// Writer accumulates the samples of one scrape. Collectors emit into it;
// the registry renders the result. A Writer is single-goroutine; it is
// handed to collectors sequentially.
type Writer struct {
	families map[string]*family
	order    []string
}

func newWriter() *Writer {
	return &Writer{families: make(map[string]*family)}
}

func (w *Writer) family(name, help string, typ metricType) *family {
	f, ok := w.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		w.families[name] = f
		w.order = append(w.order, name)
	}
	return f
}

// Counter emits one counter sample. Several collectors may contribute
// samples (with distinct labels) to the same family; the first caller's
// help string wins.
func (w *Writer) Counter(name, help string, value float64, labels ...Label) {
	f := w.family(name, help, typeCounter)
	f.rows = append(f.rows, sample{labels: labels, value: value})
}

// Gauge emits one gauge sample.
func (w *Writer) Gauge(name, help string, value float64, labels ...Label) {
	f := w.family(name, help, typeGauge)
	f.rows = append(f.rows, sample{labels: labels, value: value})
}

// Histogram emits one histogram series (rendered as _bucket/_sum/_count).
func (w *Writer) Histogram(name, help string, snap HistogramSnapshot, labels ...Label) {
	f := w.family(name, help, typeHistogram)
	f.rows = append(f.rows, sample{labels: labels, hist: &snap})
}

// Registry is a set of collectors gathered on every scrape. The zero value
// is not usable; create one with NewRegistry. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector. Registering the same collector twice emits
// its samples twice; callers own dedup.
func (r *Registry) Register(c Collector) {
	if c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// RegisterFunc adds a collector function.
func (r *Registry) RegisterFunc(f func(w *Writer)) { r.Register(CollectorFunc(f)) }

// Gather runs every collector and returns the accumulated exposition.
func (r *Registry) Gather() *Writer {
	r.mu.Lock()
	cs := make([]Collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	w := newWriter()
	for _, c := range cs {
		c.Collect(w)
	}
	return w
}

// WritePrometheus gathers all collectors and renders the Prometheus text
// exposition format (version 0.0.4) to out.
func (r *Registry) WritePrometheus(out io.Writer) error {
	return r.Gather().writeTo(out)
}

// writeTo renders the accumulated families, sorted by name, each sample's
// labels sorted by key.
func (w *Writer) writeTo(out io.Writer) error {
	names := append([]string(nil), w.order...)
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := w.families[name]
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.rows {
			if f.typ == typeHistogram {
				writeHistogramRows(&b, f.name, s.labels, *s.hist)
				continue
			}
			b.WriteString(f.name)
			writeLabels(&b, s.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(out, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramRows renders one histogram sample: cumulative _bucket rows
// with the le label, then _sum and _count.
func writeHistogramRows(b *strings.Builder, name string, labels []Label, h HistogramSnapshot) {
	var cum uint64
	for i, upper := range h.Upper {
		cum += h.Counts[i]
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, append(append([]Label(nil), labels...), L("le", formatValue(upper))))
		fmt.Fprintf(b, " %d\n", cum)
	}
	cum += h.Overflow
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabels(b, append(append([]Label(nil), labels...), L("le", "+Inf")))
	fmt.Fprintf(b, " %d\n", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, labels)
	fmt.Fprintf(b, " %s\n", formatValue(h.Sum))
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, labels)
	fmt.Fprintf(b, " %d\n", h.Count)
}

// writeLabels renders {k="v",...} with keys sorted; nothing for no labels.
func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	sorted := append([]Label(nil), labels...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, +Inf/-Inf/NaN by name.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
