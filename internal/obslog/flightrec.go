package obslog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"strata/internal/telemetry"
)

// FlightRecorder is a fixed-size in-memory ring of recent structured
// events — the process black box. Every obslog record lands here at every
// level; on a crash (operator panic, armed faultinject crashpoint,
// SIGQUIT) the ring is dumped to stderr and to a flightrec-<pid>.json
// file, so a `make chaos` kill leaves evidence of the last checkpoint
// epochs, overload ladder transitions, breaker flips, and reconnects that
// preceded it.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Event
	next int
	size int

	events atomic.Uint64
	dumps  atomic.Uint64
}

// DefaultRingSize is the default number of retained events.
const DefaultRingSize = 256

// NewFlightRecorder creates a recorder retaining the last n events
// (DefaultRingSize when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &FlightRecorder{ring: make([]Event, n)}
}

var std = NewFlightRecorder(DefaultRingSize)

// Recorder returns the process-wide flight recorder every obslog logger
// feeds.
func Recorder() *FlightRecorder { return std }

// Record appends one event, evicting the oldest when full.
func (r *FlightRecorder) Record(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	r.events.Add(1)
	r.mu.Lock()
	r.ring[r.next] = ev
	r.next = (r.next + 1) % len(r.ring)
	if r.size < len(r.ring) {
		r.size++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (r *FlightRecorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.size)
	for i := 0; i < r.size; i++ {
		out = append(out, r.ring[(r.next-r.size+i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Dump is the serialized form of one flight-recorder dump.
type Dump struct {
	PID      int       `json:"pid"`
	Process  string    `json:"process"`
	Reason   string    `json:"reason"`
	DumpedAt time.Time `json:"dumped_at"`
	Events   []Event   `json:"events"`
}

// WriteDump writes the ring as indented JSON to w.
func (r *FlightRecorder) WriteDump(w io.Writer, reason string) error {
	r.dumps.Add(1)
	d := Dump{
		PID:      os.Getpid(),
		Process:  processName(),
		Reason:   reason,
		DumpedAt: time.Now(),
		Events:   r.Snapshot(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// crashDir overrides the dump directory; see SetCrashDir.
var crashDir atomic.Pointer[string]

// SetCrashDir directs future crash dumps into dir instead of the default
// (the STRATA_FLIGHTREC_DIR environment variable, falling back to
// "bench-out" under the working directory). Tests point it at a temp dir
// so induced panics don't litter the source tree.
func SetCrashDir(dir string) { crashDir.Store(&dir) }

// CrashDir returns where crash dumps will be written.
func CrashDir() string {
	if d := crashDir.Load(); d != nil {
		return *d
	}
	if d := os.Getenv("STRATA_FLIGHTREC_DIR"); d != "" {
		return d
	}
	return "bench-out"
}

// DumpToDir writes the ring to dir/flightrec-<pid>.json and returns the
// path. The dump is written to a temp file and renamed into place, so the
// final path either holds a complete JSON document or does not exist: a
// process dying mid-dump (these dumps are written *during* crashes) leaves a
// stray .tmp at worst, never a torn flightrec-<pid>.json for a later
// artifact collector to choke on.
func (r *FlightRecorder) DumpToDir(dir, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("flightrec-%d.json", os.Getpid()))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	if err := r.WriteDump(f, reason); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		_ = os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// ErrTornDump reports a flight-recorder dump file whose JSON is truncated
// or otherwise unparseable — the signature of a process that died while
// writing it (or of a pre-atomic-rename dump). Callers collecting dumps as
// failure artifacts should treat it as "evidence damaged", not as a reason
// to stop collecting.
var ErrTornDump = fmt.Errorf("obslog: torn flight-recorder dump")

// ReadDump parses a flight-recorder dump file. A missing file returns the
// os error; a present-but-unparseable file returns ErrTornDump (wrapped
// with detail) so harnesses can collect what exists and flag the tear
// instead of wedging on it.
func ReadDump(path string) (*Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrTornDump, path, err)
	}
	return &d, nil
}

// Collect implements telemetry.Collector with the flight recorder's own
// series.
func (r *FlightRecorder) Collect(w *telemetry.Writer) {
	w.Counter("strata_flightrec_events_total",
		"Structured events recorded by the flight recorder ring.",
		float64(r.events.Load()))
	w.Counter("strata_flightrec_dumps_total",
		"Flight-recorder dumps written (panic, crashpoint, SIGQUIT).",
		float64(r.dumps.Load()))
	r.mu.Lock()
	size := r.size
	r.mu.Unlock()
	w.Gauge("strata_flightrec_ring_events",
		"Events currently retained in the flight-recorder ring.",
		float64(size))
}

// crashMu serializes crash dumps so two goroutines panicking together
// don't interleave output.
var crashMu sync.Mutex

// Crash records a crash-level event and dumps the flight recorder to
// stderr and to CrashDir()/flightrec-<pid>.json. It is the hook behind
// operator panic recovery, armed faultinject crashpoints, and SIGQUIT.
// Dump-write failures are reported on stderr but never mask the crash
// being recorded.
func Crash(reason string, kv ...string) {
	ev := Event{Level: "ERROR", Component: "flightrec", Msg: reason}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.Attrs = append(ev.Attrs, EventAttr{Key: kv[i], Value: kv[i+1]})
	}
	std.Record(ev)

	crashMu.Lock()
	defer crashMu.Unlock()
	fmt.Fprintf(os.Stderr, "== STRATA FLIGHT RECORDER DUMP (reason: %s) ==\n", reason)
	if err := std.WriteDump(os.Stderr, reason); err != nil {
		fmt.Fprintf(os.Stderr, "obslog: stderr dump failed: %v\n", err)
	}
	path, err := std.DumpToDir(CrashDir(), reason)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obslog: file dump failed: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "== flight recorder written to %s ==\n", path)
}

// InstallSignalDump makes SIGQUIT dump the flight recorder (in addition to
// the Go runtime's own stack dump — the signal is re-raised with the
// default handler after dumping, preserving that behavior). Binaries call
// it once at startup; the returned stop function uninstalls the handler.
func InstallSignalDump() (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				Crash("SIGQUIT")
				signal.Reset(syscall.SIGQUIT)
				_ = syscall.Kill(os.Getpid(), syscall.SIGQUIT)
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

func processName() string {
	return filepath.Base(os.Args[0])
}
