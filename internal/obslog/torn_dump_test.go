package obslog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDumpToDirIsAtomic: the dump lands via temp-file-plus-rename, so the
// final flightrec-<pid>.json is complete the instant it exists and no .tmp
// residue survives a successful dump.
func TestDumpToDirIsAtomic(t *testing.T) {
	dir := t.TempDir()
	r := NewFlightRecorder(8)
	r.Record(Event{Level: "INFO", Component: "core", Msg: "epoch sealed"})

	path, err := r.DumpToDir(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, fmt.Sprintf("flightrec-%d.json", os.Getpid())); path != want {
		t.Errorf("dump path = %q, want %q", path, want)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file left behind after successful dump: %v", err)
	}
	d, err := ReadDump(path)
	if err != nil {
		t.Fatalf("ReadDump on fresh dump: %v", err)
	}
	if len(d.Events) != 1 || d.Events[0].Msg != "epoch sealed" {
		t.Errorf("dump events = %+v", d.Events)
	}
}

// TestReadDumpTornTail is the torn-tail recovery contract: a dump whose
// JSON was cut mid-write (the process died while dumping) is reported as
// ErrTornDump — a distinct, matchable condition — rather than wedging or
// masquerading as an I/O failure. The next harness run's artifact
// collection keys on this to log "evidence damaged" and keep going.
func TestReadDumpTornTail(t *testing.T) {
	dir := t.TempDir()
	r := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Level: "WARN", Component: "pubsub", Msg: fmt.Sprintf("link down %d", i)})
	}
	path, err := r.DumpToDir(dir, "crash")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the tail off at several depths, including mid-string and just
	// past the header — every truncation must yield ErrTornDump.
	for _, frac := range []float64{0.9, 0.5, 0.1} {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%0.1f.json", frac))
		if err := os.WriteFile(torn, data[:int(float64(len(data))*frac)], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadDump(torn); !errors.Is(err, ErrTornDump) {
			t.Errorf("ReadDump(%0.1f of dump) = %v, want ErrTornDump", frac, err)
		}
	}

	// Garbage that is not JSON at all is also a torn dump, not a crash.
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("\x00\x01 not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDump(junk); !errors.Is(err, ErrTornDump) {
		t.Errorf("ReadDump(junk) = %v, want ErrTornDump", err)
	}
	if _, err := ReadDump(junk); err == nil || !strings.Contains(err.Error(), "junk.json") {
		t.Errorf("torn-dump error should name the file, got %v", err)
	}

	// A missing file is NOT a torn dump: the collector distinguishes "no
	// evidence" from "damaged evidence".
	if _, err := ReadDump(filepath.Join(dir, "absent.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("ReadDump(absent) = %v, want os.ErrNotExist", err)
	}
}
