package obslog

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

// resetConfig restores the default logging configuration after a test
// mutated the process-wide state.
func resetConfig(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if err := Configure("info", "text", os.Stderr); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"debug", "DEBUG", false},
		{"info", "INFO", false},
		{"", "INFO", false},
		{"WARN", "WARN", false},
		{"warning", "WARN", false},
		{" Error ", "ERROR", false},
		{"verbose", "", true},
	}
	for _, tt := range cases {
		lv, err := ParseLevel(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseLevel(%q) = %v, want error", tt.in, lv)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLevel(%q): %v", tt.in, err)
			continue
		}
		if lv.String() != tt.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", tt.in, lv, tt.want)
		}
	}
}

func TestTextSinkRespectsThreshold(t *testing.T) {
	resetConfig(t)
	var sink bytes.Buffer
	if err := Configure("warn", "text", &sink); err != nil {
		t.Fatal(err)
	}
	l := L("stream")
	l.Debug("too quiet")
	l.Info("still too quiet")
	l.Warn("shed burst", "dropped", 42)
	l.Error("sink failed", "error", "disk full")

	out := sink.String()
	if strings.Contains(out, "too quiet") {
		t.Errorf("sub-threshold records reached the sink:\n%s", out)
	}
	for _, want := range []string{"[stream]", "shed burst", "dropped=42", "sink failed", `error="disk full"`} {
		if !strings.Contains(out, want) {
			t.Errorf("sink output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONFormat(t *testing.T) {
	resetConfig(t)
	var sink bytes.Buffer
	if err := Configure("info", "json", &sink); err != nil {
		t.Fatal(err)
	}
	L("kvstore").Info("memtable flushed", "entries", 7)

	line := strings.TrimSpace(sink.String())
	var ev Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("sink line is not JSON: %v: %q", err, line)
	}
	if ev.Component != "kvstore" || ev.Msg != "memtable flushed" || ev.Level != "INFO" {
		t.Errorf("event = %+v", ev)
	}
	if len(ev.Attrs) != 1 || ev.Attrs[0].Key != "entries" || ev.Attrs[0].Value != "7" {
		t.Errorf("attrs = %+v, want entries=7", ev.Attrs)
	}
}

func TestConfigureRejectsBadValues(t *testing.T) {
	resetConfig(t)
	if err := Configure("loud", "text", nil); err == nil {
		t.Error("bad level accepted")
	}
	if err := Configure("info", "xml", nil); err == nil {
		t.Error("bad format accepted")
	}
}

func TestWithAttrsAndGroups(t *testing.T) {
	resetConfig(t)
	var sink bytes.Buffer
	if err := Configure("info", "text", &sink); err != nil {
		t.Fatal(err)
	}
	l := L("core").With("pipeline", "p1").WithGroup("ckpt")
	l.Info("committed", "epoch", 3)

	out := sink.String()
	for _, want := range []string{"pipeline=p1", "ckpt.epoch=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEveryRecordFeedsFlightRecorder(t *testing.T) {
	resetConfig(t)
	var sink bytes.Buffer
	if err := Configure("error", "text", &sink); err != nil {
		t.Fatal(err)
	}
	before := Recorder().events.Load()
	L("pubsub").Debug("reconnect attempt", "n", 1) // below the sink threshold
	if got := Recorder().events.Load(); got != before+1 {
		t.Fatalf("flight recorder events %d -> %d, want +1 for a sub-threshold record", before, got)
	}
	if sink.Len() != 0 {
		t.Errorf("sub-threshold record reached the sink: %q", sink.String())
	}
	// The event itself must be retrievable from the ring.
	snap := Recorder().Snapshot()
	last := snap[len(snap)-1]
	if last.Msg != "reconnect attempt" || last.Component != "pubsub" || last.Level != "DEBUG" {
		t.Errorf("last ring event = %+v", last)
	}
}

func TestFlagsApply(t *testing.T) {
	resetConfig(t)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	apply := Flags(fs)
	if err := fs.Parse([]string{"-log-level=debug", "-log-format=json"}); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err != nil {
		t.Fatal(err)
	}
	c := cfg.Load()
	if c.format != "json" || c.level.String() != "DEBUG" {
		t.Errorf("config = %v/%s, want DEBUG/json", c.level, c.format)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	apply = Flags(fs)
	if err := fs.Parse([]string{"-log-level=nope"}); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err == nil {
		t.Error("bad -log-level value applied without error")
	}
}
