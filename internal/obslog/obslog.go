// Package obslog is STRATA's structured event log and crash flight
// recorder (DESIGN.md §12).
//
// Logging goes through log/slog with a custom handler that does two things
// per record: it always appends the event to the process-wide flight
// recorder ring (at every level, so the black box has more detail than the
// console), and it writes the record to the configured sink only when the
// record's level clears the configured threshold. Components get scoped
// loggers via L("stream"), L("pubsub"), L("kvstore"), L("core"); every cmd
// wires -log-level and -log-format through Flags.
package obslog

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// config is the process-wide logging configuration, swapped atomically so
// Configure is safe against concurrent logging.
type config struct {
	level  slog.Level
	format string // "text" or "json"
	out    io.Writer
}

var (
	cfg     atomic.Pointer[config]
	writeMu sync.Mutex // serializes sink writes across components
)

func init() {
	cfg.Store(&config{level: slog.LevelInfo, format: "text", out: os.Stderr})
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obslog: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Configure sets the process-wide log threshold, encoding ("text" or
// "json"), and sink. The flight recorder keeps receiving every event
// regardless of the threshold.
func Configure(level, format string, out io.Writer) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	switch format {
	case "", "text":
		format = "text"
	case "json":
	default:
		return fmt.Errorf("obslog: unknown log format %q (want text|json)", format)
	}
	if out == nil {
		out = os.Stderr
	}
	cfg.Store(&config{level: lv, format: format, out: out})
	return nil
}

// Flags registers -log-level and -log-format on fs and returns a function
// that applies them (call it after fs.Parse).
func Flags(fs *flag.FlagSet) func() error {
	level := fs.String("log-level", "info", "minimum structured-log level: debug|info|warn|error")
	format := fs.String("log-format", "text", "structured-log encoding: text|json")
	return func() error { return Configure(*level, *format, os.Stderr) }
}

// L returns a logger scoped to one component ("stream", "pubsub",
// "kvstore", "core", ...). The component rides on every record and keys
// the flight-recorder entries.
func L(component string) *slog.Logger {
	return slog.New(&handler{component: component})
}

// handler routes records to the flight recorder and the configured sink.
type handler struct {
	component string
	attrs     []slog.Attr
	group     string // dotted prefix from WithGroup
}

// Enabled admits everything Debug and above: the flight recorder wants all
// events, and the sink threshold is applied in Handle.
func (h *handler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= slog.LevelDebug
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &handler{component: h.component, group: h.group}
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		nh.attrs = append(nh.attrs, h.qualify(a))
	}
	return nh
}

func (h *handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	prefix := name
	if h.group != "" {
		prefix = h.group + "." + name
	}
	return &handler{component: h.component, attrs: h.attrs, group: prefix}
}

// qualify applies the WithGroup prefix to an attr key.
func (h *handler) qualify(a slog.Attr) slog.Attr {
	if h.group != "" {
		a.Key = h.group + "." + a.Key
	}
	return a
}

func (h *handler) Handle(_ context.Context, r slog.Record) error {
	ev := Event{
		Time:      r.Time,
		Level:     r.Level.String(),
		Component: h.component,
		Msg:       r.Message,
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	n := len(h.attrs) + r.NumAttrs()
	if n > 0 {
		ev.Attrs = make([]EventAttr, 0, n)
	}
	for _, a := range h.attrs {
		ev.Attrs = appendAttr(ev.Attrs, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		ev.Attrs = appendAttr(ev.Attrs, h.qualify(a))
		return true
	})
	Recorder().Record(ev)

	c := cfg.Load()
	if r.Level < c.level {
		return nil
	}
	line, err := ev.format(c.format)
	if err != nil {
		return err
	}
	writeMu.Lock()
	defer writeMu.Unlock()
	_, err = io.WriteString(c.out, line)
	return err
}

// appendAttr flattens a (possibly grouped) attr into string key/values.
func appendAttr(dst []EventAttr, a slog.Attr) []EventAttr {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			ga.Key = a.Key + "." + ga.Key
			dst = appendAttr(dst, ga)
		}
		return dst
	}
	if a.Key == "" {
		return dst
	}
	return append(dst, EventAttr{Key: a.Key, Value: fmt.Sprint(v.Any())})
}

// EventAttr is one flattened key/value of a structured event. Values are
// pre-rendered to strings so flight-recorder dumps serialize without
// holding references into live objects.
type EventAttr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is one structured log record, as retained by the flight recorder.
type Event struct {
	Time      time.Time   `json:"ts"`
	Level     string      `json:"level"`
	Component string      `json:"component,omitempty"`
	Msg       string      `json:"msg"`
	Attrs     []EventAttr `json:"attrs,omitempty"`
}

// format renders the event as one sink line (trailing newline included).
func (ev Event) format(format string) (string, error) {
	if format == "json" {
		b, err := json.Marshal(ev)
		if err != nil {
			return "", err
		}
		return string(b) + "\n", nil
	}
	var sb strings.Builder
	sb.WriteString(ev.Time.Format("2006-01-02T15:04:05.000Z07:00"))
	fmt.Fprintf(&sb, " %-5s", ev.Level)
	if ev.Component != "" {
		fmt.Fprintf(&sb, " [%s]", ev.Component)
	}
	sb.WriteByte(' ')
	sb.WriteString(ev.Msg)
	for _, a := range ev.Attrs {
		val := a.Value
		if strings.ContainsAny(val, " \t\"") {
			val = fmt.Sprintf("%q", val)
		}
		fmt.Fprintf(&sb, " %s=%s", a.Key, val)
	}
	sb.WriteByte('\n')
	return sb.String(), nil
}
