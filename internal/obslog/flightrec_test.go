package obslog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strata/internal/telemetry"
)

func TestFlightRecorderRingEviction(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Msg: fmt.Sprintf("ev-%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(snap))
	}
	for i, ev := range snap {
		if want := fmt.Sprintf("ev-%d", i+2); ev.Msg != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest-first, oldest two evicted)", i, ev.Msg, want)
		}
	}
	if r.events.Load() != 6 {
		t.Errorf("events counter = %d, want 6", r.events.Load())
	}
}

func TestWriteDumpShape(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(Event{Level: "INFO", Component: "core", Msg: "checkpoint committed",
		Attrs: []EventAttr{{Key: "epoch", Value: "3"}}})
	var buf bytes.Buffer
	if err := r.WriteDump(&buf, "test-reason"); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if d.PID != os.Getpid() || d.Reason != "test-reason" || d.DumpedAt.IsZero() {
		t.Errorf("dump header = %+v", d)
	}
	if len(d.Events) != 1 || d.Events[0].Msg != "checkpoint committed" {
		t.Errorf("dump events = %+v", d.Events)
	}
	if r.dumps.Load() != 1 {
		t.Errorf("dumps counter = %d, want 1", r.dumps.Load())
	}
}

func TestCrashDirPrecedence(t *testing.T) {
	t.Setenv("STRATA_FLIGHTREC_DIR", "")
	old := crashDir.Load()
	crashDir.Store(nil)
	t.Cleanup(func() { crashDir.Store(old) })

	if got := CrashDir(); got != "bench-out" {
		t.Errorf("default CrashDir = %q, want bench-out", got)
	}
	t.Setenv("STRATA_FLIGHTREC_DIR", "/env/dir")
	if got := CrashDir(); got != "/env/dir" {
		t.Errorf("env CrashDir = %q, want /env/dir", got)
	}
	SetCrashDir("/set/dir")
	if got := CrashDir(); got != "/set/dir" {
		t.Errorf("SetCrashDir CrashDir = %q, want /set/dir (overrides env)", got)
	}
}

func TestCrashWritesDumpFile(t *testing.T) {
	dir := t.TempDir()
	old := crashDir.Load()
	SetCrashDir(dir)
	t.Cleanup(func() { crashDir.Store(old) })

	L("core").Info("checkpoint committed", "epoch", "7")
	Crash("injected for test", "crashpoint", "detect.layer.9")

	path := filepath.Join(dir, fmt.Sprintf("flightrec-%d.json", os.Getpid()))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("crash dump not written: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("crash dump is not JSON: %v", err)
	}
	if d.Reason != "injected for test" {
		t.Errorf("dump reason = %q", d.Reason)
	}
	var sawCheckpoint, sawCrash bool
	for _, ev := range d.Events {
		if ev.Msg == "checkpoint committed" {
			sawCheckpoint = true
		}
		if ev.Component == "flightrec" && ev.Msg == "injected for test" {
			sawCrash = true
			if len(ev.Attrs) != 1 || ev.Attrs[0].Key != "crashpoint" || ev.Attrs[0].Value != "detect.layer.9" {
				t.Errorf("crash event attrs = %+v", ev.Attrs)
			}
		}
	}
	if !sawCheckpoint || !sawCrash {
		t.Errorf("dump missing events: checkpoint=%v crash=%v", sawCheckpoint, sawCrash)
	}
}

// TestFlightRecorderExposition registers the global recorder on a telemetry
// registry and checks the strata_flightrec_* series render as valid
// exposition.
func TestFlightRecorderExposition(t *testing.T) {
	Recorder().Record(Event{Msg: "seed the ring"})
	reg := telemetry.NewRegistry()
	reg.Register(Recorder())

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if err := telemetry.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v\n---\n%s", err, body)
	}
	for _, want := range []string{
		"strata_flightrec_events_total",
		"strata_flightrec_dumps_total",
		"strata_flightrec_ring_events",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, body)
		}
	}
}
