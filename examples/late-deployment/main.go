// Late-deployment: ad-hoc pipelines over recorded connectors.
//
// The paper separates STRATA's modules precisely "so that multiple event
// detection methods can be continuously deployed, run (potentially in
// parallel), and decommissioned". This example shows that lifecycle:
//
//  1. a build runs with only a basic monitoring pipeline deployed, while a
//     Recorder persists the raw-data connector into a durable topic log;
//
//  2. mid-way, the expert deploys a SECOND detection method (porosity-risk
//     scoring) without touching the running pipeline — it first replays the
//     recorded layers it missed, then the build completes;
//
//  3. the first pipeline is decommissioned while the second keeps running.
//
//     go run ./examples/late-deployment
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"strata/internal/amsim"
	"strata/internal/bench"
	"strata/internal/core"
	"strata/internal/pubsub"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	broker := pubsub.NewBroker()
	defer broker.Close()

	logDir, err := os.MkdirTemp("", "strata-topics-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(logDir)
	topics, err := pubsub.OpenLogStore(logDir)
	if err != nil {
		return err
	}
	defer topics.Close()

	storeDir, err := os.MkdirTemp("", "strata-mgr-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	mgr, err := core.NewManager(storeDir, broker)
	if err != nil {
		return err
	}
	defer mgr.Close()

	const jobID = "late-deploy-build"
	rawSubject := core.RawSubject("ot", jobID)

	// Record everything the raw connector publishes, durably.
	rec, err := pubsub.Record(broker, rawSubject, topics)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// The build: 16 layers, paced so the mid-build deployment is visible.
	layout := amsim.ScaledLayout(300)
	job, err := amsim.NewJob(jobID, layout, 21)
	if err != nil {
		return err
	}
	replay, err := bench.Replay(job, 16)
	if err != nil {
		return err
	}

	producer, err := mgr.Deploy("machine-feed", func(fw *core.Framework) error {
		feed := &bench.ReplayFeed{Layers: replay, Gap: 80 * time.Millisecond}
		src := fw.AddSource("ot", mergedOT(feed))
		fw.Deliver("drop", src, func(core.EventTuple) error { return nil })
		return nil
	})
	if err != nil {
		return err
	}

	// Pipeline 1 (deployed from layer 1): coarse mean-emission monitor.
	p1, err := mgr.Deploy("mean-monitor", func(fw *core.Framework) error {
		in := fw.AddBrokerSource("tap", rawSubject, len(replay))
		det := fw.DetectEvent("mean", in, func(t core.EventTuple, emit func(core.EventTuple) error) error {
			img, ok := t.GetImage("ot")
			if !ok {
				return fmt.Errorf("no image")
			}
			mean, _ := img.MeanNonZero()
			return emit(t.WithKV("mean", mean))
		})
		fw.Deliver("expert", det, func(t core.EventTuple) error {
			mean, _ := t.GetFloat("mean")
			fmt.Printf("[mean-monitor]    layer %2d: bed emission %.0f\n", t.Layer, mean)
			return nil
		})
		return nil
	})
	if err != nil {
		return err
	}

	// Mid-build: wait until roughly half the layers are recorded, then
	// deploy the second detection method. It replays layers 1..k from the
	// topic log before following the stream live.
	for topics.Len(rawSubject) < 8 {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf(">>> deploying porosity-risk detector mid-build (after %d recorded layers)\n",
		topics.Len(rawSubject))
	allSeen := make(chan struct{})
	p2, err := mgr.Deploy("porosity-risk", func(fw *core.Framework) error {
		in := fw.AddReplaySource("replay+live", topics, rawSubject, true)
		det := fw.DetectEvent("risk", in, func(t core.EventTuple, emit func(core.EventTuple) error) error {
			img, ok := t.GetImage("ot")
			if !ok {
				return fmt.Errorf("no image")
			}
			// Cheap risk score: fraction of printed pixels below 80% of
			// the bed mean (lack-of-fusion indicator).
			mean, okMean := img.MeanNonZero()
			if !okMean {
				return nil
			}
			low, total := 0, 0
			for _, v := range img.Pix {
				if v == 0 {
					continue
				}
				total++
				if float64(v) < 0.8*mean {
					low++
				}
			}
			return emit(t.WithKV("risk", float64(low)/float64(total)))
		})
		count := 0
		fw.Deliver("expert", det, func(t core.EventTuple) error {
			risk, _ := t.GetFloat("risk")
			fmt.Printf("[porosity-risk]   layer %2d: %.2f%% low-fusion pixels\n", t.Layer, risk*100)
			count++
			if count == len(replay) {
				close(allSeen) // processed the whole build (replayed + live)
			}
			return nil
		})
		return nil
	})
	if err != nil {
		return err
	}

	if err := producer.Wait(); err != nil {
		return err
	}
	if err := p1.Wait(); err != nil {
		return err
	}
	// Wait until the late pipeline has covered the whole build (replayed
	// layers + live tail), then decommission it — its live subscription
	// would otherwise run forever.
	select {
	case <-allSeen:
	case <-ctx.Done():
		return ctx.Err()
	}
	fmt.Println(">>> porosity-risk covered all layers; decommissioning it")
	if err := mgr.Decommission("porosity-risk"); err != nil {
		return err
	}
	if err := p2.Wait(); err != nil {
		return err
	}
	if err := rec.Stop(); err != nil {
		return err
	}
	fmt.Printf("done: %d layers recorded durably in %s\n", topics.Len(rawSubject), logDir)
	return nil
}

// mergedOT replays layer tuples carrying the OT image (regions omitted:
// these detectors work on the whole bed).
func mergedOT(feed *bench.ReplayFeed) core.CollectFunc {
	return feed.OTCollector()
}
