// Feedback-control: closing the loop the paper envisions (Figure 1B) —
// pipeline results drive continue / re-adjust / terminate decisions that
// reach the machine during the recoat gap.
//
// A simulated build starts with excessive laser energy density (the whole
// bed prints "very warm"). The monitoring pipeline counts very-warm cells
// per layer; a controller rule first orders an energy adjustment and, if
// the process stays out of family, terminates the job. The machine applies
// the commands between layers, so the build either recovers (saving the
// part) or stops early (saving powder, energy, and machine time).
//
//	go run ./examples/feedback-control
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"strata/internal/amsim"
	"strata/internal/bench"
	"strata/internal/core"
	"strata/internal/pubsub"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		layers  = flag.Int("layers", 20, "layers to print (at most)")
		imagePx = flag.Int("image", 300, "OT image resolution")
		// The bad build starts 40% too hot.
		initialEnergy = flag.Float64("energy", 1.4, "initial energy-density factor")
	)
	flag.Parse()

	broker := pubsub.NewBroker()
	defer broker.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	const jobID = "hot-build"
	layout := amsim.ScaledLayout(*imagePx)
	job, err := amsim.NewJob(jobID, layout, 11)
	if err != nil {
		return err
	}
	job.Model.SetEnergyScale(*initialEnergy)

	// Machine-side control port: receives and acknowledges commands.
	port, err := core.ListenMachinePort(broker, jobID)
	if err != nil {
		return err
	}
	defer port.Close()

	// Monitoring pipeline.
	storeDir, err := os.MkdirTemp("", "strata-feedback-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	fw, err := core.New(core.WithStoreDir(storeDir), core.WithBroker(broker), core.WithName("feedback"))
	if err != nil {
		return err
	}
	defer fw.Close()

	// Calibrate against a healthy historical build (energy 1.0).
	calJob, err := amsim.NewJob("healthy-history", layout, 10)
	if err != nil {
		return err
	}
	if err := bench.CalibrateReference(fw, calJob, 3); err != nil {
		return err
	}

	otCh := make(chan core.EventTuple, 2)
	src := fw.AddSource("ot", func(ctx context.Context, emit func(core.EventTuple) error) error {
		for {
			select {
			case t, ok := <-otCh:
				if !ok {
					return nil
				}
				if err := emit(t); err != nil {
					return err
				}
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	})

	// Detect: fraction of very-warm cells across the whole bed.
	warm := fw.DetectEvent("warmth", src, func(t core.EventTuple, emit func(core.EventTuple) error) error {
		img, ok := t.GetImage("ot")
		if !ok {
			return fmt.Errorf("layer tuple without image")
		}
		ref, err := fw.GetFloat("strata/ot/reference_emission")
		if err != nil {
			return err
		}
		regionsStr, _ := t.GetString("regions")
		regions, err := amsim.DecodeRegions(regionsStr)
		if err != nil {
			return err
		}
		veryWarm, total := 0, 0
		for _, r := range regions {
			cells, err := img.SplitCells(r, 4)
			if err != nil {
				return err
			}
			for _, c := range cells {
				total++
				if c.Mean/ref > 1.3 {
					veryWarm++
				}
			}
		}
		frac := float64(veryWarm) / float64(total)
		return emit(t.WithKV("very_warm_fraction", frac))
	})

	shares := fw.Share(warm, 2)

	// Expert view.
	fw.Deliver("expert", shares[0], func(t core.EventTuple) error {
		frac, _ := t.GetFloat("very_warm_fraction")
		fmt.Printf("layer %2d: %5.1f%% of cells very warm\n", t.Layer, frac*100)
		return nil
	})

	// Controller rule: above 30% very-warm → adjust once; if still above
	// 30% two layers after adjusting → terminate.
	adjustedAt := 0
	fw.AttachController("controller", shares[1], func(t core.EventTuple) (core.Command, bool) {
		frac, _ := t.GetFloat("very_warm_fraction")
		if frac <= 0.3 {
			return core.Command{}, false
		}
		if adjustedAt == 0 {
			adjustedAt = t.Layer
			return core.Command{
				Action: core.ActionAdjust,
				Params: map[string]float64{"energy_scale": 1.0},
				Reason: fmt.Sprintf("%.0f%% very-warm cells", frac*100),
			}, true
		}
		if t.Layer >= adjustedAt+2 {
			return core.Command{
				Action: core.ActionTerminate,
				Reason: "process stayed out of family after adjustment",
			}, true
		}
		return core.Command{}, false
	}, 5*time.Second, func(cmd core.Command, _ []byte) {
		fmt.Printf(">>> control: %s at layer %d (%s)\n", cmd.Action, cmd.Layer, cmd.Reason)
	})

	// Machine run with the control hook polling the port.
	machine, err := amsim.NewMachine("eos-sim", amsim.MachineConfig{RecoatGap: 50 * time.Millisecond})
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	var machineErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(otCh)
		machineErr = machine.RunControlled(ctx, job, *layers, func(ld amsim.LayerData) error {
			t := core.EventTuple{
				TS:          time.UnixMicro(int64(ld.Layer) * 1_000_000),
				Job:         ld.JobID,
				Layer:       ld.Layer,
				AvailableAt: time.Now(),
				KV: map[string]any{
					"ot":      ld.Image,
					"regions": amsim.EncodeRegions(ld.Params.SpecimenRegions),
				},
			}
			select {
			case otCh <- t:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}, func(layer int) (bool, map[string]float64) {
			// The recoat-gap decision point: apply whatever the
			// controller ordered so far.
			params := map[string]float64{}
			if v, ok := port.Param("energy_scale"); ok {
				params["energy_scale"] = v
			}
			return port.Terminated(), params
		})
	}()

	if err := fw.Run(ctx); err != nil {
		return err
	}
	wg.Wait()

	switch {
	case errors.Is(machineErr, amsim.ErrTerminated):
		fmt.Println("\nbuild TERMINATED by the feedback loop — powder and machine time saved")
	case machineErr != nil:
		return machineErr
	default:
		fmt.Println("\nbuild completed — the adjustment brought the process back in family")
	}
	for _, cmd := range port.Commands() {
		fmt.Printf("  command log: layer %d %s (%s)\n", cmd.Layer, cmd.Action, cmd.Reason)
	}
	return nil
}
