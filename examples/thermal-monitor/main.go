// Thermal-monitor: the paper's full use-case (Figure 3 / Algorithm 1) on a
// live simulated PBF-LB machine.
//
// A simulated EOS M290 prints the paper's 12-specimen build, emitting one
// OT image per layer with a (time-scaled) recoat gap between layers. The
// STRATA pipeline fuses images with printing parameters, partitions them
// into specimens and cells, classifies each cell's thermal energy against a
// calibrated reference, and DBSCAN-clusters the too-cold/too-hot portions
// within and across layers. Cluster reports and their latency against the
// 3-second QoS deadline are printed live.
//
//	go run ./examples/thermal-monitor [-layers 25] [-image 500]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"strata/internal/amsim"
	"strata/internal/bench"
	"strata/internal/core"
	"strata/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// machineFeed adapts a live amsim.Machine run to the pipeline's two
// sources: the machine goroutine publishes layer data into a channel, and
// both collectors consume per-layer tuples from fan-out copies.
type machineFeed struct {
	mmPerPixel float64
	ot         chan core.EventTuple
	pp         chan core.EventTuple
}

func (f *machineFeed) MMPerPixel() float64 { return f.mmPerPixel }

func (f *machineFeed) OTCollector() core.CollectFunc {
	return func(ctx context.Context, emit func(core.EventTuple) error) error {
		return drain(ctx, f.ot, emit)
	}
}

func (f *machineFeed) ParamsCollector() core.CollectFunc {
	return func(ctx context.Context, emit func(core.EventTuple) error) error {
		return drain(ctx, f.pp, emit)
	}
}

func drain(ctx context.Context, ch <-chan core.EventTuple, emit func(core.EventTuple) error) error {
	for {
		select {
		case t, ok := <-ch:
			if !ok {
				return nil
			}
			if err := emit(t); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func run() error {
	var (
		layers  = flag.Int("layers", 25, "layers to print")
		imagePx = flag.Int("image", 500, "OT image resolution (paper: 2000)")
		cell    = flag.Int("cell", 20, "cell edge in paper pixels")
		l       = flag.Int("L", 10, "layers clustered together")
		// The real machine needs ~1 min/layer; scale time so the demo
		// finishes quickly while keeping a visible inter-layer gap.
		layerTime = flag.Duration("layer-time", 300*time.Millisecond, "simulated melt time per layer")
		recoat    = flag.Duration("recoat", 100*time.Millisecond, "simulated recoat gap")

		metricsAddr = flag.String("metrics-addr", ":9090",
			"serve Prometheus /metrics, /healthz, and /debug/traces on this address (empty disables)")
		traceEvery = flag.Int("trace-every", 4,
			"trace 1 in N layers through the pipeline (0 disables)")
	)
	flag.Parse()

	layout := amsim.ScaledLayout(*imagePx)
	job, err := amsim.NewJob("demo-build", layout, 42)
	if err != nil {
		return err
	}
	machine, err := amsim.NewMachine("eos-m290-sim", amsim.MachineConfig{
		LayerTime: *layerTime,
		RecoatGap: *recoat,
	})
	if err != nil {
		return err
	}

	storeDir, err := os.MkdirTemp("", "strata-thermal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	fw, err := core.New(core.WithStoreDir(storeDir), core.WithName("thermal-monitor"),
		core.WithTraceSampling(*traceEvery))
	if err != nil {
		return err
	}
	defer fw.Close()

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.Register(fw)
		reg.Register(telemetry.GoRuntime{})
		ms, err := telemetry.Serve(*metricsAddr, telemetry.NewHandler(reg,
			telemetry.WithTraces(func() []telemetry.TraceSnapshot {
				return fw.Traces().Slowest(0)
			})))
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (traces: /debug/traces)\n", ms.Addr())
	}

	// Historical calibration: the classification thresholds derive from a
	// previous job's emission statistics.
	calJob, err := amsim.NewJob("historical-build", layout, 41)
	if err != nil {
		return err
	}
	if err := bench.CalibrateReference(fw, calJob, 3); err != nil {
		return err
	}

	feed := &machineFeed{
		mmPerPixel: layout.MMPerPixel(),
		ot:         make(chan core.EventTuple, 4),
		pp:         make(chan core.EventTuple, 4),
	}

	edge := *cell * *imagePx / amsim.DefaultImagePx
	if edge < 1 {
		edge = 1
	}
	err = bench.BuildPipeline(fw, feed, layout.LayerMM,
		bench.PipelineParams{CellEdgePx: edge, L: *l, Parallelism: 4},
		func(r bench.Result) error {
			qos := "OK"
			if r.Latency > bench.QoSThreshold {
				qos = "MISSED QoS"
			}
			if len(r.Clusters) == 0 {
				return nil
			}
			fmt.Printf("layer %3d %s: %2d defect cluster(s) from %3d hot/cold cells  [latency %8v %s]\n",
				r.Layer, r.Specimen, len(r.Clusters), r.Events,
				r.Latency.Round(time.Millisecond), qos)
			for _, c := range r.Clusters {
				fmt.Printf("    cluster #%d: %d cells, %.1f mm², centre (%.1f, %.1f) mm\n",
					c.ID, c.Size, c.Weight, c.Centroid.X, c.Centroid.Y)
			}
			return nil
		})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// The machine runs concurrently with the pipeline, feeding both
	// collectors through the shared channels.
	machineErr := make(chan error, 1)
	go func() {
		defer close(feed.ot)
		defer close(feed.pp)
		machineErr <- machine.Run(ctx, job, *layers, func(ld amsim.LayerData) error {
			ts := time.UnixMicro(int64(ld.Layer) * 1_000_000)
			now := time.Now()
			pp := core.EventTuple{
				TS: ts, Job: ld.JobID, Layer: ld.Layer, AvailableAt: now,
				KV: map[string]any{
					"power":       ld.Params.LaserPowerW,
					"speed":       ld.Params.ScanSpeedMMS,
					"hatch":       ld.Params.HatchMM,
					"orientation": ld.Params.OrientationDeg,
					"regions":     amsim.EncodeRegions(ld.Params.SpecimenRegions),
				},
			}
			ot := core.EventTuple{
				TS: ts, Job: ld.JobID, Layer: ld.Layer, AvailableAt: now,
				KV: map[string]any{"ot": ld.Image},
			}
			select {
			case feed.pp <- pp:
			case <-ctx.Done():
				return ctx.Err()
			}
			select {
			case feed.ot <- ot:
			case <-ctx.Done():
				return ctx.Err()
			}
			fmt.Fprintf(os.Stderr, "machine: layer %d/%d complete\n", ld.Layer, *layers)
			return nil
		})
	}()

	if err := fw.Run(ctx); err != nil {
		return err
	}
	if err := <-machineErr; err != nil {
		return err
	}
	fmt.Println("build finished; pipeline drained")
	return nil
}
