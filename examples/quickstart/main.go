// Quickstart: the smallest useful STRATA pipeline.
//
// A single source plays the role of a PBF-LB machine reporting one
// melt-pool temperature summary per layer. A detectEvent stage flags layers
// whose temperature deviates from a threshold stored in the key-value
// store, and Deliver hands the alerts to the "expert" (here: stdout).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"strata/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	storeDir, err := os.MkdirTemp("", "strata-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)

	// A Framework bundles the stream engine and the key-value store.
	fw, err := core.New(core.WithStoreDir(storeDir), core.WithName("quickstart"))
	if err != nil {
		return err
	}
	defer fw.Close()

	// Data-at-rest: thresholds learned from previous jobs live in the
	// store and are read inside the pipeline (Table 1's store/get).
	if err := fw.StoreFloat("temp/max_deviation", 40); err != nil {
		return err
	}

	// addSource: one tuple per layer ⟨τ, job, layer, [temp:v]⟩. A real
	// deployment would wrap the machine's sensor API here.
	const layers = 30
	source := fw.AddSource("melt-pool", func(ctx context.Context, emit func(core.EventTuple) error) error {
		base := time.Now()
		for layer := 1; layer <= layers; layer++ {
			// Synthetic temperature: drifts with a bump around layer 20.
			temp := 1000 + 10*math.Sin(float64(layer)/3)
			if layer >= 18 && layer <= 22 {
				temp += 60 // process excursion the pipeline must catch
			}
			err := emit(core.EventTuple{
				TS:    base.Add(time.Duration(layer) * time.Second),
				Job:   "quickstart-job",
				Layer: layer,
				KV:    map[string]any{"temp": temp},
			})
			if err != nil {
				return err
			}
		}
		return nil
	})

	// detectEvent: flag layers deviating beyond the stored threshold.
	alerts := fw.DetectEvent("deviation", source, func(t core.EventTuple, emit func(core.EventTuple) error) error {
		maxDev, err := fw.GetFloat("temp/max_deviation")
		if err != nil {
			return err
		}
		temp, _ := t.GetFloat("temp")
		if dev := math.Abs(temp - 1000); dev > maxDev {
			return emit(t.WithKV("deviation", dev))
		}
		return nil
	})

	// Deliver: the expert's view of the pipeline.
	fw.Deliver("expert", alerts, func(t core.EventTuple) error {
		dev, _ := t.GetFloat("deviation")
		fmt.Printf("ALERT layer %2d: melt-pool temperature deviates by %.1f K\n", t.Layer, dev)
		return nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fw.Run(ctx); err != nil {
		return err
	}
	fmt.Println("job complete")
	return nil
}
