// Historical-replay: reprocess a finished build as fast as possible — the
// paper's third experiment, estimating "how fast OT images from historic
// data can be reprocessed".
//
// The example renders a build once, replays it through the Algorithm 1
// pipeline with no pacing, and reports achieved images/s and cells/s plus
// the latency distribution against the 3 s QoS.
//
//	go run ./examples/historical-replay [-layers 30] [-cell 20]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"strata/internal/amsim"
	"strata/internal/bench"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		layers  = flag.Int("layers", 30, "layers to reprocess")
		imagePx = flag.Int("image", 500, "OT image resolution (paper: 2000)")
		cell    = flag.Int("cell", 20, "cell edge in paper pixels")
		l       = flag.Int("L", 10, "layers clustered together")
		par     = flag.Int("par", 4, "pipeline parallelism")
	)
	flag.Parse()

	layout := amsim.ScaledLayout(*imagePx)
	job, err := amsim.NewJob("historic-build", layout, 7)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rendering %d layers (%dx%d px)...\n", *layers, *imagePx, *imagePx)
	replay, err := bench.Replay(job, *layers)
	if err != nil {
		return err
	}

	edge := *cell * *imagePx / amsim.DefaultImagePx
	if edge < 1 {
		edge = 1
	}
	storeDir, err := os.MkdirTemp("", "strata-replay-example-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	stats, err := bench.RunOnce(ctx, replay, layout.LayerMM,
		bench.PipelineParams{CellEdgePx: edge, L: *l, Parallelism: *par},
		bench.FeedMode{}, len(replay)+8, storeDir)
	if err != nil {
		return err
	}

	box := bench.ComputeBox(stats.Latencies)
	misses := 0
	for _, d := range stats.Latencies {
		if d > bench.QoSThreshold {
			misses++
		}
	}
	fmt.Printf("reprocessed %d layers in %v\n", stats.Layers, stats.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f images/s, %.0f cells/s\n", stats.ImagesPerSec(), stats.CellsPerSec())
	fmt.Printf("results:    %d specimen-layer reports (%d hot/cold cells)\n", stats.Results, stats.Events)
	fmt.Printf("latency:    %v\n", box)
	fmt.Printf("QoS(3s):    %d misses\n", misses)
	return nil
}
