// Multi-machine: several PBF-LB machines monitored in parallel through the
// pub/sub connectors — the paper's "manufacturing facility can count on
// many PBF-LB machines" scenario (§3, requirement 3).
//
// Each simulated machine runs its own producer framework whose raw-data
// connector publishes OT tuples on the shared broker (in the paper:
// Kafka). One analysis framework per machine taps the connector with
// AddBrokerSource and runs the Algorithm 1 pipeline. Everything is
// in-process here; swap the broker for strata-broker + pubsub.Dial to span
// hosts.
//
//	go run ./examples/multi-machine [-machines 3] [-layers 10]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"strata/internal/amsim"
	"strata/internal/bench"
	"strata/internal/cluster"
	"strata/internal/core"
	"strata/internal/otimage"
	"strata/internal/pubsub"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		machines = flag.Int("machines", 3, "number of simulated PBF-LB machines")
		layers   = flag.Int("layers", 10, "layers each machine prints")
		imagePx  = flag.Int("image", 400, "OT image resolution (paper: 2000)")
	)
	flag.Parse()

	broker := pubsub.NewBroker()
	defer broker.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	layout := amsim.ScaledLayout(*imagePx)

	var wg sync.WaitGroup
	errCh := make(chan error, 2**machines)
	var mu sync.Mutex
	totalResults := map[string]int{}
	totalClusters := map[string]int{}

	for m := 0; m < *machines; m++ {
		jobID := fmt.Sprintf("machine%02d-job", m)
		job, err := amsim.NewJob(jobID, layout, int64(100+m))
		if err != nil {
			return err
		}
		replay, err := bench.Replay(job, *layers)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "machine %d: rendered %d layers\n", m, len(replay))

		// Consumer first, so its subscription exists before production
		// starts (core pub/sub is at-most-once, like NATS).
		consumerDir, err := os.MkdirTemp("", "strata-mm-consumer-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(consumerDir)
		consumer, err := core.New(
			core.WithStoreDir(consumerDir),
			core.WithBroker(broker),
			core.WithName("analysis-"+jobID),
		)
		if err != nil {
			return err
		}
		defer consumer.Close()
		if err := bench.CalibrateFromLayers(consumer, replay, 3); err != nil {
			return err
		}

		// The analysis pipeline taps the machine's raw OT connector. The
		// pp parameters travel in the same tuple here (fused at the
		// producer), so the consumer needs a single source.
		in := consumer.AddBrokerSource("tap", core.RawSubject("ot", jobID), *layers,
			pubsub.WithSubBuffer(*layers+4))
		spec := consumer.Partition("spec", in, specimenPartition)
		cells := consumer.Partition("cell", spec, cellPartition(layout.MMPerPixel()))
		det := consumer.DetectEvent("label", cells, labelCells(consumer))
		cor := consumer.CorrelateEvents("clusters", det, 5, clusterEvents(layout.LayerMM))
		consumer.Deliver("expert", cor, func(t core.EventTuple) error {
			n, _ := t.GetInt("clusters")
			mu.Lock()
			totalResults[jobID]++
			totalClusters[jobID] += int(n)
			mu.Unlock()
			return nil
		})

		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := consumer.Run(ctx); err != nil {
				errCh <- fmt.Errorf("consumer %s: %w", jobID, err)
			}
		}()

		// Producer framework: replays the machine's layers; its raw
		// connector publishes each tuple on the broker.
		producerDir, err := os.MkdirTemp("", "strata-mm-producer-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(producerDir)
		producer, err := core.New(
			core.WithStoreDir(producerDir),
			core.WithBroker(broker),
			core.WithName("machine-"+jobID),
		)
		if err != nil {
			return err
		}
		defer producer.Close()
		feed := &bench.ReplayFeed{Layers: replay, Gap: 20 * time.Millisecond}
		otSrc := producer.AddSource("ot", mergedCollector(feed))
		producer.Deliver("noop", otSrc, func(core.EventTuple) error { return nil })

		wg.Add(1)
		go func() {
			defer wg.Done()
			// Give the consumer's subscription a beat to attach.
			time.Sleep(50 * time.Millisecond)
			if err := producer.Run(ctx); err != nil {
				errCh <- fmt.Errorf("producer %s: %w", jobID, err)
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}

	fmt.Printf("\nmonitored %d machines in parallel:\n", *machines)
	for job, n := range totalResults {
		fmt.Printf("  %s: %d specimen-layer reports, %d defect clusters\n",
			job, n, totalClusters[job])
	}
	st := broker.Stats()
	fmt.Printf("broker: %d published, %d delivered\n", st.Published, st.Delivered)
	return nil
}

// mergedCollector emits one tuple per layer carrying BOTH the OT image and
// the printing parameters (fused at the producer side to halve connector
// traffic).
func mergedCollector(feed *bench.ReplayFeed) core.CollectFunc {
	ot := feed.OTCollector()
	return func(ctx context.Context, emit func(core.EventTuple) error) error {
		i := 0
		return ot(ctx, func(t core.EventTuple) error {
			ld := feed.Layers[i]
			i++
			t = t.WithKV("regions", amsim.EncodeRegions(ld.Params.SpecimenRegions))
			return emit(t)
		})
	}
}

func specimenPartition(t core.EventTuple, emit func(core.EventTuple) error) error {
	img, ok := t.GetImage("ot")
	if !ok {
		return fmt.Errorf("no OT image in %v", t)
	}
	regionsStr, _ := t.GetString("regions")
	regions, err := amsim.DecodeRegions(regionsStr)
	if err != nil {
		return err
	}
	for id := 0; id < len(regions); id++ {
		sub, err := img.SubImage(regions[id])
		if err != nil {
			return err
		}
		err = emit(core.EventTuple{
			Specimen: fmt.Sprintf("spec%02d", id),
			KV: map[string]any{
				"img": sub,
				"ox":  int64(regions[id].X0),
				"oy":  int64(regions[id].Y0),
			},
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func cellPartition(mmpp float64) core.PartitionFunc {
	return func(t core.EventTuple, emit func(core.EventTuple) error) error {
		img, _ := t.GetImage("img")
		ox, _ := t.GetInt("ox")
		oy, _ := t.GetInt("oy")
		cells, err := img.SplitCells(otimage.Rect{X1: img.Width, Y1: img.Height}, 5)
		if err != nil {
			return err
		}
		for _, c := range cells {
			err := emit(core.EventTuple{
				Specimen: t.Specimen,
				Portion:  fmt.Sprintf("c%d-%d", c.Col, c.Row),
				KV: map[string]any{
					"mean": c.Mean,
					"cx":   (float64(c.Region.X0+c.Region.X1)/2 + float64(ox)) * mmpp,
					"cy":   (float64(c.Region.Y0+c.Region.Y1)/2 + float64(oy)) * mmpp,
				},
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
}

func labelCells(fw *core.Framework) core.DetectFunc {
	return func(t core.EventTuple, emit func(core.EventTuple) error) error {
		ref, err := fw.GetFloat("strata/ot/reference_emission")
		if err != nil {
			return err
		}
		mean, _ := t.GetFloat("mean")
		ratio := mean / ref
		if ratio >= 0.7 && ratio <= 1.3 {
			return nil
		}
		return emit(t)
	}
}

func clusterEvents(layerMM float64) core.CorrelateFunc {
	return func(w core.CorrelateWindow, emit func(core.EventTuple) error) error {
		pts := make([]cluster.Point, 0, len(w.Events))
		for _, e := range w.Events {
			cx, _ := e.GetFloat("cx")
			cy, _ := e.GetFloat("cy")
			pts = append(pts, cluster.Point{X: cx, Y: cy, Z: float64(e.Layer) * layerMM, Weight: 1})
		}
		labels, err := cluster.DBSCAN(pts, 4, 3)
		if err != nil {
			return err
		}
		sums := cluster.Summarize(pts, labels)
		return emit(core.EventTuple{KV: map[string]any{
			"clusters": int64(len(sums)),
			"events":   int64(len(pts)),
		}})
	}
}
