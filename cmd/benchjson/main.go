// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be committed and diffed
// (BENCH_PR4.json). Stdlib only.
//
//	go test -bench=. -run='^$' ./... | benchjson > BENCH.json
//
// Each benchmark line becomes an object with the package it ran in, the
// iteration count, and every reported metric (ns/op, B/op, t/s, ...). Lines
// that are not benchmark results (PASS, ok, goos, ...) shape the context or
// are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"strata/internal/obslog"
)

type result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	applyLog := obslog.Flags(flag.CommandLine)
	flag.Parse()
	if err := applyLog(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	var rep report
	var pkg string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBench parses one result line:
//
//	BenchmarkPutSync-8   4628   252272 ns/op   507.8 B/op   3 allocs/op
//
// Fields alternate value/unit after the name and iteration count.
func parseBench(line, pkg string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Pkg: pkg, Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[f[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
