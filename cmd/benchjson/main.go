// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be committed and diffed
// (BENCH_PR4.json). Stdlib only.
//
//	go test -bench=. -run='^$' ./... | benchjson > BENCH.json
//
// Each benchmark line becomes an object with the package it ran in, the
// iteration count, and every reported metric (ns/op, B/op, t/s, ...). Lines
// that are not benchmark results (PASS, ok, goos, ...) shape the context or
// are ignored.
//
// With -budget FILE the tool becomes a gate instead of a converter: FILE
// lists per-benchmark metric ceilings (typically allocs/op), and benchjson
// exits non-zero when a benchmark on stdin exceeds its ceiling or a budgeted
// benchmark did not run — the `make alloc-smoke` CI leg.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"strata/internal/obslog"
)

type result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	applyLog := obslog.Flags(flag.CommandLine)
	budgetPath := flag.String("budget", "", "budget JSON; check metric ceilings instead of emitting JSON")
	flag.Parse()
	if err := applyLog(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *budgetPath != "" {
		if err := checkBudget(*budgetPath, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// budgetEntry pins one metric of one benchmark. Name matches the benchmark
// name with the trailing GOMAXPROCS suffix stripped (BenchmarkX/sub, not
// BenchmarkX/sub-8), so budgets are stable across machines.
type budgetEntry struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"`
	Max    float64 `json:"max"`
}

type budgetFile struct {
	Budgets []budgetEntry `json:"budgets"`
}

// benchBase strips the -GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkX/sub-8" → "BenchmarkX/sub").
func benchBase(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func checkBudget(path string, in io.Reader, out io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf budgetFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(bf.Budgets) == 0 {
		return fmt.Errorf("%s lists no budgets", path)
	}

	// index: benchmark base name -> metrics of its (last) run.
	got := map[string]map[string]float64{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseBench(line, ""); ok {
			got[benchBase(r.Name)] = r.Metrics
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	failures := 0
	for _, b := range bf.Budgets {
		metrics, ok := got[b.Name]
		if !ok {
			fmt.Fprintf(out, "MISSING  %-50s (budgeted benchmark did not run)\n", b.Name)
			failures++
			continue
		}
		v, ok := metrics[b.Metric]
		if !ok {
			fmt.Fprintf(out, "MISSING  %-50s %s not reported\n", b.Name, b.Metric)
			failures++
			continue
		}
		status := "ok"
		if v > b.Max {
			status = "OVER"
			failures++
		}
		fmt.Fprintf(out, "%-8s %-50s %-10s %g (budget %g)\n", status, b.Name, b.Metric, v, b.Max)
	}
	if failures > 0 {
		return fmt.Errorf("%d budget violation(s)", failures)
	}
	return nil
}

func run(in *os.File, out *os.File) error {
	var rep report
	var pkg string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBench parses one result line:
//
//	BenchmarkPutSync-8   4628   252272 ns/op   507.8 B/op   3 allocs/op
//
// Fields alternate value/unit after the name and iteration count.
func parseBench(line, pkg string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Pkg: pkg, Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[f[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
