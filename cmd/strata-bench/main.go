// Command strata-bench regenerates the paper's evaluation figures.
//
//	strata-bench -fig all                 # everything, scaled-down default
//	strata-bench -fig 5 -image 2000      # Figure 5 at full paper resolution
//	strata-bench -fig 7 -layers 30       # Figure 7 with a 30-layer replay
//
// Output is textual (the rows behind each figure) plus PNG files for
// Figure 4.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"strata/internal/bench"
	"strata/internal/obslog"
	"strata/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "strata-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 4, 5, 6, 7, all, ablate, ckpt, or overload")
		imagePx = flag.Int("image", 1000, "OT image resolution in pixels (paper: 2000)")
		layers  = flag.Int("layers", 40, "layers per repetition (paper: full 575-layer build)")
		reps    = flag.Int("reps", 5, "repetitions per configuration (paper: 5)")
		seed    = flag.Int64("seed", 2022, "simulation seed")
		par     = flag.Int("par", 4, "pipeline stage parallelism")
		outDir  = flag.String("out", "bench-out", "directory for Figure 4 images")
		quiet   = flag.Bool("quiet", false, "suppress progress output")

		ckptEvery = flag.Duration("ckpt-interval", 200*time.Millisecond,
			"checkpoint cadence for -fig ckpt (overhead measurement)")

		metricsAddr = flag.String("metrics-addr", "",
			"serve Prometheus process metrics (/metrics, /healthz) during the run (empty disables)")
		cpuProfile = flag.String("cpuprofile", "",
			"write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "",
			"write an allocation profile at exit to this file (go tool pprof)")
		pprofOn = flag.Bool("pprof", false,
			"mount /debug/pprof/ on the metrics address (requires -metrics-addr)")
	)
	applyLog := obslog.Flags(flag.CommandLine)
	flag.Parse()
	if err := applyLog(); err != nil {
		return err
	}
	defer obslog.InstallSignalDump()()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "strata-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "strata-bench: memprofile:", err)
			}
		}()
	}

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.Register(obslog.Recorder())
		reg.Register(telemetry.GoRuntime{})
		var hopts []telemetry.HandlerOption
		if *pprofOn {
			hopts = append(hopts, telemetry.WithProfiling())
		}
		ms, err := telemetry.Serve(*metricsAddr, telemetry.NewHandler(reg, hopts...))
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", ms.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := bench.ExperimentConfig{
		ImagePx:     *imagePx,
		Layers:      *layers,
		Reps:        *reps,
		Seed:        *seed,
		Parallelism: *par,
	}
	if !*quiet {
		cfg.Verbose = os.Stderr
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	if all || want["4"] {
		fmt.Println("=== Figure 4: OT image of a specimen and its thermal-energy clustering ===")
		out, err := bench.RunFig4(ctx, cfg, *outDir)
		if err != nil {
			return fmt.Errorf("figure 4: %w", err)
		}
		fmt.Printf("specimen %d, layer %d: %d event cells in %d clusters\n",
			out.SpecimenID, out.Layer, out.EventCells, out.ClusterCount)
		fmt.Printf("wrote %s and %s\n\n", out.OTImagePNG, out.ClustersPNG)
	}

	if all || want["5"] {
		fmt.Println("=== Figure 5: latency vs. cell size (QoS 3 s) ===")
		res, err := bench.RunCellSizeExperiment(ctx, cfg, nil)
		if err != nil {
			return fmt.Errorf("figure 5: %w", err)
		}
		fmt.Println(bench.FormatCellSizeResults(res))
		if err := writeCSV(*outDir, "fig5.csv", func(p string) error {
			return bench.WriteCellSizeCSV(p, res)
		}); err != nil {
			return err
		}
	}

	if all || want["6"] {
		fmt.Println("=== Figure 6: latency vs. clustered layers L (QoS 3 s) ===")
		res, err := bench.RunLayerWindowExperiment(ctx, cfg, nil)
		if err != nil {
			return fmt.Errorf("figure 6: %w", err)
		}
		fmt.Println(bench.FormatLayerWindowResults(res))
		if err := writeCSV(*outDir, "fig6.csv", func(p string) error {
			return bench.WriteLayerWindowCSV(p, res)
		}); err != nil {
			return err
		}
	}

	if all || want["7"] {
		fmt.Println("=== Figure 7: throughput/latency vs. offered OT images/s ===")
		res, err := bench.RunThroughputExperiment(ctx, cfg, nil, nil)
		if err != nil {
			return fmt.Errorf("figure 7: %w", err)
		}
		fmt.Println(bench.FormatThroughputResults(res))
		if err := writeCSV(*outDir, "fig7.csv", func(p string) error {
			return bench.WriteThroughputCSV(p, res)
		}); err != nil {
			return err
		}
	}

	if want["ckpt"] {
		fmt.Println("=== Checkpoint overhead (crash-consistent recovery, DESIGN.md §10) ===")
		rep, err := bench.RunCheckpointOverhead(ctx, cfg, *ckptEvery)
		if err != nil {
			return fmt.Errorf("checkpoint overhead: %w", err)
		}
		fmt.Println(rep)
	}

	if want["overload"] {
		fmt.Println("=== Overload degradation: unprotected vs shed-late (DESIGN.md §11) ===")
		rep, err := bench.RunOverloadExperiment(ctx, cfg)
		if err != nil {
			return fmt.Errorf("overload: %w", err)
		}
		fmt.Println(rep)
	}

	if want["ablate"] || want["ablations"] {
		fmt.Println("=== Ablations (design choices, DESIGN.md §5) ===")
		rep, err := bench.RunAblations(ctx, cfg)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		fmt.Println(rep)
	}
	return nil
}

// writeCSV writes one figure's CSV under dir, creating it if needed.
func writeCSV(dir, name string, write func(path string) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := write(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
