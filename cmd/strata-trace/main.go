// Command strata-trace joins cross-process trace fragments into one
// timeline. A sampled tuple that crosses process boundaries (source process
// → strata-broker → sink process) leaves one span fragment per process, each
// served by that process's /debug/trace/<id> endpoint; this tool fans a GET
// across the given metrics addresses and merges what comes back.
//
//	strata-trace -addrs localhost:9091,localhost:9092 -list
//	strata-trace -addrs localhost:9091,localhost:9092 -id 4bf92f3577b34da6a3ce929d0e0e4736
//
// -list asks each process for its slowest recent traces (/debug/traces) and
// prints the distinct trace IDs seen, so an id for -id can be picked without
// guessing. Output is a text timeline by default, or the merged JSON with
// -format=json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"strata/internal/obslog"
	"strata/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "strata-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addrs   = flag.String("addrs", "", "comma-separated metrics addresses (host:port) to query")
		id      = flag.String("id", "", "hex trace ID to join across the addresses")
		list    = flag.Bool("list", false, "list distinct trace IDs known to the addresses and exit")
		format  = flag.String("format", "text", "output format: text or json")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	)
	applyLog := obslog.Flags(flag.CommandLine)
	flag.Parse()
	if err := applyLog(); err != nil {
		return err
	}

	targets := splitAddrs(*addrs)
	if len(targets) == 0 {
		return fmt.Errorf("no -addrs given (want -addrs host:port[,host:port...])")
	}
	switch *format {
	case "text", "json":
	default:
		return fmt.Errorf("unknown -format %q (want text or json)", *format)
	}
	client := &http.Client{Timeout: *timeout}

	if *list {
		return listTraces(client, targets)
	}
	if *id == "" {
		return fmt.Errorf("no -id given (use -list to discover trace IDs)")
	}

	frags, misses := fetchFragments(client, targets, *id)
	if len(frags) == 0 {
		return fmt.Errorf("trace %s not found on any of %s", *id, strings.Join(targets, ", "))
	}
	for _, m := range misses {
		fmt.Fprintln(os.Stderr, "strata-trace:", m)
	}
	merged := telemetry.MergeFragments(frags)
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(merged)
	}
	fmt.Print(merged.Timeline())
	return nil
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// fragmentReport mirrors the /debug/trace/<id> response shape
// (telemetry's fragmentReport).
type fragmentReport struct {
	TraceID   string                    `json:"trace_id"`
	Count     int                       `json:"count"`
	Fragments []telemetry.TraceSnapshot `json:"fragments"`
}

// traceReport mirrors the /debug/traces response shape.
type traceReport struct {
	Count  int                       `json:"count"`
	Traces []telemetry.TraceSnapshot `json:"traces"`
}

// fetchFragments collects the trace's fragments from every target. A target
// that is down or does not know the trace is reported in misses, not fatal:
// a partial join (some processes already restarted) still has value.
func fetchFragments(client *http.Client, targets []string, id string) (frags []telemetry.TraceSnapshot, misses []string) {
	for _, t := range targets {
		var rep fragmentReport
		err := getJSON(client, fmt.Sprintf("http://%s/debug/trace/%s", t, id), &rep)
		if err != nil {
			misses = append(misses, fmt.Sprintf("%s: %v", t, err))
			continue
		}
		frags = append(frags, rep.Fragments...)
	}
	return frags, misses
}

// listTraces prints the distinct trace IDs known across the targets,
// with per-process fragment labels, newest information first per target.
func listTraces(client *http.Client, targets []string) error {
	type seenInfo struct {
		labels []string
		count  int
	}
	seen := make(map[string]*seenInfo)
	var order []string
	for _, t := range targets {
		var rep traceReport
		err := getJSON(client, fmt.Sprintf("http://%s/debug/traces?n=%d", t, telemetry.DefaultTraceCapacity), &rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "strata-trace: %s: %v\n", t, err)
			continue
		}
		for _, tr := range rep.Traces {
			if tr.TraceID == "" {
				continue
			}
			in := seen[tr.TraceID]
			if in == nil {
				in = &seenInfo{}
				seen[tr.TraceID] = in
				order = append(order, tr.TraceID)
			}
			in.count++
			lbl := fmt.Sprintf("%s[%d]/%s", tr.Process, tr.PID, tr.Label)
			in.labels = append(in.labels, lbl)
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("no traces reported by %s", strings.Join(targets, ", "))
	}
	sort.Strings(order)
	for _, id := range order {
		in := seen[id]
		fmt.Printf("%s  %d fragment(s): %s\n", id, in.count, strings.Join(in.labels, ", "))
	}
	return nil
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
