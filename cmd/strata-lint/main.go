// Command strata-lint runs the STRATA contract analyzers over the
// requested packages and exits non-zero when the set of unsuppressed
// findings differs from the committed baseline (or, without -baseline,
// when any finding remains).
//
// Usage:
//
//	strata-lint [flags] [packages]
//
// With no package patterns it analyzes ./.... The default output prints
// one finding per line as `file:line:col: message (analyzer)`, the format
// editors and CI annotators already understand; -format=json emits the
// same findings as a machine-readable array and -format=sarif emits SARIF
// 2.1.0 for code-scanning UIs. File paths in json/sarif output are
// relative to the -C directory, so the artifacts are stable across
// checkouts.
//
// A baseline file (-baseline lint.baseline) makes CI incremental: known
// findings are tolerated, but a NEW finding fails the run — and so does a
// STALE baseline entry whose finding has been fixed, so the ratchet only
// tightens. Regenerate with -update after fixing or suppressing. Baseline
// entries are keyed by analyzer, file, and message — not line — so
// unrelated edits that shift code around don't invalidate them.
//
// Suppress a deliberate violation with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or immediately above) the offending line, or in the doc comment of
// the enclosing function. The environment for this repo has no module
// proxy, so the suite runs on an in-tree, stdlib-only re-implementation of
// the go/analysis contract — including gob-serialized cross-package facts
// (see internal/lint/analysis) — instead of the x/tools multichecker;
// `go vet -vettool` mode needs the upstream unitchecker and is therefore
// not available offline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"strata/internal/lint"
	"strata/internal/lint/analysis"
	"strata/internal/lint/analyzers"
	"strata/internal/obslog"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the registered analyzers and exit")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		dir      = flag.String("C", ".", "directory to resolve package patterns in")
		format   = flag.String("format", "text", "output format: text, json, or sarif")
		baseline = flag.String("baseline", "", "baseline file of known findings; fail only when findings differ from it")
		update   = flag.Bool("update", false, "rewrite the -baseline file from this run's findings and exit 0")
	)
	applyLog := obslog.Flags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: strata-lint [flags] [packages]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := applyLog(); err != nil {
		fmt.Fprintln(os.Stderr, "strata-lint:", err)
		os.Exit(2)
	}

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "strata-lint: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	if *update && *baseline == "" {
		fmt.Fprintln(os.Stderr, "strata-lint: -update requires -baseline")
		os.Exit(2)
	}

	suite := analyzers.All
	if *only != "" {
		suite = nil
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers.All {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "strata-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// The baseline lives next to the code it describes: resolve a relative
	// -baseline against the -C directory, like the package patterns.
	if *baseline != "" && !filepath.IsAbs(*baseline) {
		*baseline = filepath.Join(*dir, *baseline)
	}

	findings, err := lint.Run(*dir, patterns, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strata-lint: %v\n", err)
		os.Exit(2)
	}
	recs := toRecords(*dir, findings)

	if *update {
		if err := writeBaseline(*baseline, recs); err != nil {
			fmt.Fprintf(os.Stderr, "strata-lint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "strata-lint: wrote %d finding(s) to %s\n", len(recs), *baseline)
		return
	}

	switch *format {
	case "json":
		emitJSON(os.Stdout, recs)
	case "sarif":
		emitSARIF(os.Stdout, suite, recs)
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	if *baseline != "" {
		known, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "strata-lint: %v\n", err)
			os.Exit(2)
		}
		fresh, stale := diffBaseline(recs, known)
		for _, r := range fresh {
			fmt.Fprintf(os.Stderr, "strata-lint: new finding not in baseline: %s:%d: %s (%s)\n",
				r.File, r.Line, r.Message, r.Analyzer)
		}
		for _, r := range stale {
			fmt.Fprintf(os.Stderr, "strata-lint: stale baseline entry (finding fixed — regenerate with -update): %s: %s (%s)\n",
				r.File, r.Message, r.Analyzer)
		}
		if len(fresh) > 0 || len(stale) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "strata-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// record is one finding in the json/sarif/baseline shape: the file path is
// relative to the -C directory so the artifacts don't embed checkout
// paths.
type record struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func toRecords(dir string, findings []lint.Finding) []record {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	recs := make([]record, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(abs, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		recs = append(recs, record{
			Analyzer: f.Analyzer,
			File:     file,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	return recs
}

func emitJSON(w *os.File, recs []record) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if recs == nil {
		recs = []record{}
	}
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintf(os.Stderr, "strata-lint: encode json: %v\n", err)
		os.Exit(2)
	}
}

// Minimal SARIF 2.1.0: one run, one rule per analyzer, one result per
// finding. Enough for code-scanning upload and for humans with jq.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}
type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}
type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}
type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}
type sarifRule struct {
	ID   string `json:"id"`
	Desc struct {
		Text string `json:"text"`
	} `json:"shortDescription"`
}
type sarifResult struct {
	RuleID  string `json:"ruleId"`
	Level   string `json:"level"`
	Message struct {
		Text string `json:"text"`
	} `json:"message"`
	Locations []sarifLocation `json:"locations"`
}
type sarifLocation struct {
	Physical struct {
		Artifact struct {
			URI string `json:"uri"`
		} `json:"artifactLocation"`
		Region struct {
			StartLine   int `json:"startLine"`
			StartColumn int `json:"startColumn"`
		} `json:"region"`
	} `json:"physicalLocation"`
}

func emitSARIF(w *os.File, suite []*analysis.Analyzer, recs []record) {
	var driver sarifDriver
	driver.Name = "strata-lint"
	for _, a := range suite {
		var r sarifRule
		r.ID = a.Name
		r.Desc.Text = a.Doc
		driver.Rules = append(driver.Rules, r)
	}
	results := make([]sarifResult, 0, len(recs))
	for _, rec := range recs {
		var res sarifResult
		res.RuleID = rec.Analyzer
		res.Level = "error"
		res.Message.Text = rec.Message
		var loc sarifLocation
		loc.Physical.Artifact.URI = rec.File
		loc.Physical.Region.StartLine = rec.Line
		loc.Physical.Region.StartColumn = rec.Column
		res.Locations = []sarifLocation{loc}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		fmt.Fprintf(os.Stderr, "strata-lint: encode sarif: %v\n", err)
		os.Exit(2)
	}
}

// The baseline file is the -format=json record array. Entries are matched
// as a multiset keyed by analyzer+file+message — line and column are
// recorded for humans but ignored when diffing, so unrelated edits that
// shift a known finding a few lines don't break CI.
func baselineKey(r record) string {
	return r.Analyzer + "\x00" + r.File + "\x00" + r.Message
}

func readBaseline(path string) ([]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read baseline: %w", err)
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return recs, nil
}

func writeBaseline(path string, recs []record) error {
	if recs == nil {
		recs = []record{}
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diffBaseline returns the findings not covered by the baseline (fresh)
// and the baseline entries no current finding matches (stale). Both are
// failures: the first is a regression, the second a ratchet that must be
// tightened.
func diffBaseline(current, known []record) (fresh, stale []record) {
	budget := make(map[string]int, len(known))
	for _, r := range known {
		budget[baselineKey(r)]++
	}
	for _, r := range current {
		k := baselineKey(r)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, r)
	}
	for _, r := range known {
		k := baselineKey(r)
		if budget[k] > 0 {
			budget[k]--
			stale = append(stale, r)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return baselineKey(stale[i]) < baselineKey(stale[j]) })
	return fresh, stale
}
