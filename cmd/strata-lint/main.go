// Command strata-lint runs the STRATA contract analyzers (streamclose,
// locksend, goctx, errdrop, boundedchan) over the requested packages and
// exits non-zero when any unsuppressed finding remains.
//
// Usage:
//
//	strata-lint [flags] [packages]
//
// With no package patterns it analyzes ./.... Findings print one per line
// as `file:line:col: message (analyzer)`, the format editors and CI
// annotators already understand. Suppress a deliberate violation with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or immediately above) the offending line, or in the doc comment of
// the enclosing function. The environment for this repo has no module
// proxy, so the suite runs on an in-tree, stdlib-only re-implementation of
// the go/analysis contract (see internal/lint/analysis) instead of the
// x/tools multichecker; `go vet -vettool` mode needs the upstream
// unitchecker and is therefore not available offline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"strata/internal/lint"
	"strata/internal/lint/analysis"
	"strata/internal/lint/analyzers"
)

func main() {
	var (
		list = flag.Bool("list", false, "list the registered analyzers and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		dir  = flag.String("C", ".", "directory to resolve package patterns in")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: strata-lint [flags] [packages]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analyzers.All
	if *only != "" {
		suite = nil
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers.All {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "strata-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := lint.Run(*dir, patterns, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strata-lint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "strata-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
