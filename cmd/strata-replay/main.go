// Command strata-replay reprocesses a recorded OT dataset (see otgen)
// through the paper's Algorithm 1 pipeline — the paper's third experiment:
// historic data replayed as fast as possible (or at a target rate) while
// checking the latency QoS.
//
//	otgen -out data/ -layers 40
//	strata-replay -data data/ -cell 20 -L 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strata/internal/amsim"
	"strata/internal/bench"
	"strata/internal/core"
	"strata/internal/obslog"
	"strata/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "strata-replay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataDir = flag.String("data", "dataset", "dataset directory written by otgen")
		cell    = flag.Int("cell", 20, "cell edge in paper pixels (2000-px scale)")
		l       = flag.Int("L", 10, "layers clustered together in correlateEvents")
		par     = flag.Int("par", 4, "pipeline parallelism")
		rate    = flag.Float64("rate", 0, "offered OT images/s (0 = as fast as possible)")
		verbose = flag.Bool("v", false, "print every cluster report")

		metricsAddr = flag.String("metrics-addr", "",
			"serve Prometheus /metrics, /healthz, and /debug/traces on this address (empty disables)")
		traceEvery = flag.Int("trace-every", 0,
			"trace 1 in N source tuples through the pipeline (0 disables; inspect via /debug/traces)")
		pprofOn = flag.Bool("pprof", false,
			"mount /debug/pprof/ on the metrics address (requires -metrics-addr)")
	)
	applyLog := obslog.Flags(flag.CommandLine)
	flag.Parse()
	if err := applyLog(); err != nil {
		return err
	}
	defer obslog.InstallSignalDump()()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, layers, err := amsim.LoadDataset(*dataDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d layers of job %q (%dx%d px)\n",
		len(layers), m.JobID, m.ImagePx, m.ImagePx)

	storeDir, err := os.MkdirTemp("", "strata-replay-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)

	fw, err := core.New(core.WithStoreDir(storeDir), core.WithQueryBuffer(len(layers)+8),
		core.WithName("replay"), core.WithTraceSampling(*traceEvery))
	if err != nil {
		return err
	}
	defer fw.Close()

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.Register(fw)
		reg.Register(obslog.Recorder())
		reg.Register(telemetry.GoRuntime{})
		hopts := []telemetry.HandlerOption{
			telemetry.WithTraces(func() []telemetry.TraceSnapshot {
				return fw.Traces().Slowest(0)
			}),
			telemetry.WithTraceLookup(fw.Traces().Find),
		}
		if *pprofOn {
			hopts = append(hopts, telemetry.WithProfiling())
		}
		ms, err := telemetry.Serve(*metricsAddr, telemetry.NewHandler(reg, hopts...))
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", ms.Addr())
	}

	feed := &bench.ReplayFeed{Layers: layers}
	if *rate > 0 {
		feed.Interval = time.Duration(float64(time.Second) / *rate)
	}
	edgePx := *cell * m.ImagePx / amsim.DefaultImagePx
	if edgePx < 1 {
		edgePx = 1
	}

	var rec bench.LatencyRecorder
	results, qosMisses := 0, 0
	err = bench.BuildPipeline(fw, feed, m.LayerMM,
		bench.PipelineParams{CellEdgePx: edgePx, L: *l, Parallelism: *par},
		func(r bench.Result) error {
			rec.Record(r.Latency)
			results++
			if r.Latency > bench.QoSThreshold {
				qosMisses++
			}
			if *verbose && len(r.Clusters) > 0 {
				fmt.Printf("layer %4d %s: %d events, %d clusters (latency %v)\n",
					r.Layer, r.Specimen, r.Events, len(r.Clusters), r.Latency.Round(time.Millisecond))
			}
			return nil
		})
	if err != nil {
		return err
	}
	// Calibration from the dataset's first layers (historical reference).
	if err := bench.CalibrateFromLayers(fw, layers, 3); err != nil {
		return err
	}

	start := time.Now()
	if err := fw.Run(ctx); err != nil {
		return err
	}
	elapsed := time.Since(start)

	box := bench.ComputeBox(rec.Values())
	fmt.Printf("\nreplayed %d layers in %v (%.1f images/s)\n",
		len(layers), elapsed.Round(time.Millisecond), float64(len(layers))/elapsed.Seconds())
	fmt.Printf("results: %d (QoS>3s misses: %d)\n", results, qosMisses)
	fmt.Printf("latency: %v\n", box)
	return nil
}
