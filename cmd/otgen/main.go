// Command otgen generates a synthetic OT dataset: one 16-bit PGM per layer
// plus a job manifest, mimicking what an EOS M290's OT sensor would have
// produced for the paper's 12-specimen build. strata-replay consumes these
// datasets.
//
//	otgen -out dataset/ -image 1000 -layers 50 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"strata/internal/amsim"
	"strata/internal/obslog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "otgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "dataset", "output directory")
		imagePx = flag.Int("image", 1000, "OT image resolution in pixels (paper: 2000)")
		layers  = flag.Int("layers", 50, "number of layers to generate (0 = whole 575-layer build)")
		seed    = flag.Int64("seed", 2022, "simulation seed")
		jobID   = flag.String("job", "synthetic-job", "job identifier")
	)
	applyLog := obslog.Flags(flag.CommandLine)
	flag.Parse()
	if err := applyLog(); err != nil {
		return err
	}

	layout := amsim.ScaledLayout(*imagePx)
	job, err := amsim.NewJob(*jobID, layout, *seed)
	if err != nil {
		return err
	}
	m, err := amsim.SaveDataset(*out, job, *layers, *seed, func(layer, total int) {
		if layer%25 == 0 || layer == total {
			fmt.Fprintf(os.Stderr, "otgen: %d/%d layers\n", layer, total)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d layers + job.json to %s\n", m.Layers, *out)
	return nil
}
