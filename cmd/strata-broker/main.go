// Command strata-broker runs a standalone pub/sub broker over TCP — the
// cross-process backbone of STRATA's Raw Data and Event connectors (the
// role Kafka plays in the paper's prototype).
//
//	strata-broker -addr :4222
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"strata/internal/pubsub"
	"strata/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "strata-broker:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":4222", "listen address")
	idleTimeout := flag.Duration("idle-timeout", 0,
		"reap connections that send no frame for this long (0 disables); requires every client to heartbeat (DialReconnect) — plain subscribe-only clients are reaped as silent")
	metricsAddr := flag.String("metrics-addr", "",
		"serve Prometheus /metrics and /healthz on this address (empty disables)")
	flag.Parse()

	var opts []pubsub.ServerOption
	if *idleTimeout > 0 {
		opts = append(opts, pubsub.WithIdleTimeout(*idleTimeout))
	}
	broker := pubsub.NewBroker()
	srv, err := pubsub.Serve(broker, *addr, opts...)
	if err != nil {
		return err
	}
	log.Printf("strata-broker listening on %s", srv.Addr())

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.Register(broker)
		reg.Register(srv)
		reg.Register(telemetry.GoRuntime{})
		ms, err := telemetry.Serve(*metricsAddr, telemetry.NewHandler(reg))
		if err != nil {
			return err
		}
		defer ms.Close()
		log.Printf("metrics on http://%s/metrics", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	return broker.Close()
}
