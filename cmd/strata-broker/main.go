// Command strata-broker runs a standalone pub/sub broker over TCP — the
// cross-process backbone of STRATA's Raw Data and Event connectors (the
// role Kafka plays in the paper's prototype).
//
//	strata-broker -addr :4222
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"strata/internal/obslog"
	"strata/internal/pubsub"
	"strata/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "strata-broker:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":4222", "listen address")
	idleTimeout := flag.Duration("idle-timeout", 0,
		"reap connections that send no frame for this long (0 disables); requires every client to heartbeat (DialReconnect) — plain subscribe-only clients are reaped as silent")
	slowConsumer := flag.Duration("slow-consumer-timeout", 0,
		"evict Block-policy subscribers that stall a delivery for this long (0 disables)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve Prometheus /metrics, /healthz, and /readyz on this address (empty disables)")
	pprofOn := flag.Bool("pprof", false,
		"mount /debug/pprof/ on the metrics address (requires -metrics-addr)")
	applyLog := obslog.Flags(flag.CommandLine)
	flag.Parse()
	if err := applyLog(); err != nil {
		return err
	}
	defer obslog.InstallSignalDump()()
	log := obslog.L("broker")

	var opts []pubsub.ServerOption
	if *idleTimeout > 0 {
		opts = append(opts, pubsub.WithIdleTimeout(*idleTimeout))
	}
	// The broker records its delivery span for every traced publish passing
	// through; /debug/trace/<id> serves those fragments to strata-trace.
	traces := telemetry.NewTraceBuffer(telemetry.DefaultTraceCapacity).
		WithLabels(telemetry.L("query", "broker"))
	bopts := []pubsub.BrokerOption{pubsub.WithTraceFragments(traces)}
	if *slowConsumer > 0 {
		bopts = append(bopts, pubsub.WithSlowConsumerTimeout(*slowConsumer))
	}
	broker := pubsub.NewBroker(bopts...)
	srv, err := pubsub.Serve(broker, *addr, opts...)
	if err != nil {
		return err
	}
	log.Info("listening", "addr", srv.Addr())

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.Register(broker)
		reg.Register(srv)
		reg.Register(traces)
		reg.Register(obslog.Recorder())
		reg.Register(telemetry.GoRuntime{})
		hopts := []telemetry.HandlerOption{
			telemetry.WithTraces(func() []telemetry.TraceSnapshot {
				return traces.Slowest(0)
			}),
			telemetry.WithTraceLookup(traces.Find),
			// The broker is ready when its pubsub listener is accepting; by
			// the time the metrics endpoint exists, it is.
			telemetry.WithReadiness(func() error { return nil }),
		}
		if *pprofOn {
			hopts = append(hopts, telemetry.WithProfiling())
		}
		ms, err := telemetry.Serve(*metricsAddr, telemetry.NewHandler(reg, hopts...))
		if err != nil {
			return err
		}
		defer ms.Close()
		log.Info("metrics serving", "url", "http://"+ms.Addr()+"/metrics")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	return broker.Close()
}
