// Command strata-worker runs the consumer half of a pipeline split across OS
// processes: a checkpointed detect→correlate pipeline whose input is pulled
// from a remote log (served by its owner with pubsub.ServeLog, reached
// through a strata-broker) and whose results are committed effectively-once
// into a local key-value store.
//
// It is the process the e2e chaos harness kills, partitions, and corrupts:
// restarted against the same -store directory it restores the newest
// checkpoint, resumes the remote pull from the checkpointed offset, and
// re-suppresses effects already committed — so the dump it writes when the
// bounded replay completes is byte-identical to a run that saw no faults.
//
//	strata-worker -broker 127.0.0.1:4222 -store /tmp/w1 \
//	    -subject strata.raw.e2e.j -total 40 -dump /tmp/w1.dump \
//	    -metrics-addr 127.0.0.1:0
//
// Stdout speaks a line protocol the harness gates on:
//
//	METRICS <addr>   telemetry endpoint is serving (when -metrics-addr is set)
//	READY            pipeline deployed, broker link live (subscription applied)
//	DONE <sha256>    bounded replay finished; dump written, hash of its bytes
//
// After DONE the process stays up (metrics and trace fragments remain
// scrapeable) until its stdin closes or it receives SIGTERM/SIGINT.
//
// The STRATA_WORKER_CRASH environment variable arms a crashpoint of the form
// "detect.layer.<n>[:hits]": the detect stage dies hard — flight-recorder
// dump, exit code 3 — when it sees layer n for the hits-th time. The harness
// removes the variable from the restarted incarnation's environment, so the
// crash injects exactly one process death per arm.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"strata/internal/core"
	"strata/internal/faultinject"
	"strata/internal/kvstore"
	"strata/internal/obslog"
	"strata/internal/pubsub"
	"strata/internal/telemetry"
)

// crashEnv arms a hard process crash at a detect-stage crashpoint.
const crashEnv = "STRATA_WORKER_CRASH"

// controlSubject is the worker's standing broker subscription. The remote
// pull protocol uses short-lived inbox subscriptions, so this durable one is
// what makes ActiveSubscriptions a truthful liveness signal for /readyz.
const controlSubject = "strata.e2e.control"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "strata-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	brokerAddr := flag.String("broker", "", "strata-broker address to pull input through (required)")
	storeDir := flag.String("store", "", "key-value store directory; reuse across restarts to recover (required)")
	subject := flag.String("subject", "strata.raw.e2e.j", "remote log subject to replay")
	total := flag.Int("total", 0, "stop after the record at offset total-1 (required, > 0)")
	window := flag.Int("window", 3, "correlate window length L")
	pipeline := flag.String("pipeline", "e2e", "pipeline (and checkpoint) name")
	ckptEvery := flag.Duration("ckpt-every", 25*time.Millisecond, "checkpoint interval")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /healthz, /readyz, and /debug/trace on this address (empty disables)")
	resultsSubject := flag.String("results-subject", "",
		"also publish each result tuple to the broker under this subject (traced; empty disables)")
	dumpPath := flag.String("dump", "", "write the durable sink's effects here on completion (empty: stdout hash only)")
	traceEvery := flag.Int("trace-every", 1, "sample a trace every n source tuples (<= 0 disables)")
	applyLog := obslog.Flags(flag.CommandLine)
	flag.Parse()
	if err := applyLog(); err != nil {
		return err
	}
	if *brokerAddr == "" || *storeDir == "" || *total <= 0 {
		return errors.New("-broker, -store, and -total are required")
	}
	defer obslog.InstallSignalDump()()
	log := obslog.L("worker")

	cps := faultinject.NewCrashpoints()
	if arm := os.Getenv(crashEnv); arm != "" {
		point, hits, err := parseCrashArm(arm)
		if err != nil {
			return err
		}
		cps.Arm(point, hits, errors.New("armed crashpoint "+point))
		log.Warn("crashpoint armed", "point", point, "hits", strconv.Itoa(hits))
	}

	rc, err := pubsub.DialReconnect(*brokerAddr,
		pubsub.WithReconnectWait(10*time.Millisecond, 250*time.Millisecond))
	if err != nil {
		return err
	}
	defer rc.Close()
	ctl, err := rc.Subscribe(controlSubject)
	if err != nil {
		return err
	}
	defer ctl.Unsubscribe()

	// The manager needs an in-process broker for connector taps; it never
	// leaves this process. The remote broker is only reachable through rc.
	local := pubsub.NewBroker()
	defer local.Close()
	mgr, err := core.NewManager(*storeDir, local,
		core.WithDefaultTraceSampling(*traceEvery))
	if err != nil {
		return err
	}
	defer mgr.Close()

	build := func(fw *core.Framework) error {
		src := fw.AddRemoteReplaySource("raw", rc, *subject, *total)
		det := fw.DetectEvent("det", src, func(t core.EventTuple, emit func(core.EventTuple) error) error {
			if err := cps.Hit(fmt.Sprintf("detect.layer.%d", t.Layer)); err != nil {
				// A crashpoint is a process death, not a pipeline error: no
				// deferred cleanup, no checkpoint, no graceful drain — the
				// flight recorder is the only evidence left behind.
				obslog.Crash(err.Error())
				os.Exit(3)
			}
			p, _ := t.KV["power"].(float64)
			return emit(core.EventTuple{KV: map[string]any{"score": p * 10}})
		})
		cor := fw.CorrelateEvents("cor", det, *window, func(w core.CorrelateWindow, emit func(core.EventTuple) error) error {
			sum := 0.0
			for _, e := range w.Events {
				s, _ := e.KV["score"].(float64)
				sum += s
			}
			return emit(core.EventTuple{KV: map[string]any{"sum": sum}})
		})
		out := cor
		if *resultsSubject != "" {
			refs := fw.Share(cor, 2)
			out = refs[0]
			fw.DeliverToConn("results", refs[1], rc, func(string) string { return *resultsSubject })
		}
		fw.DeliverDurable("out", out, func(seq uint64, t core.EventTuple, b *kvstore.Batch) error {
			sum, _ := t.KV["sum"].(float64)
			var buf [16]byte
			binary.BigEndian.PutUint64(buf[:8], uint64(t.Layer))
			binary.BigEndian.PutUint64(buf[8:], uint64(sum))
			b.Put(fmt.Appendf(nil, "out/%016x", seq), buf[:])
			return nil
		})
		return nil
	}

	p, err := mgr.Deploy(*pipeline, build,
		core.WithCheckpointInterval(*ckptEvery),
		core.WithRestartPolicy(core.RestartOnFailure),
		core.WithMaxRestarts(3),
		core.WithRestartBackoff(10*time.Millisecond))
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.Register(mgr)
		reg.Register(obslog.Recorder())
		reg.Register(telemetry.GoRuntime{})
		traceFind := func(id string) []telemetry.TraceSnapshot {
			// Look through the pipeline handle, not the manager: fragments
			// must stay scrapeable after the bounded replay completes and
			// the pipeline retires.
			return p.Framework().Traces().Find(id)
		}
		ms, err := telemetry.Serve(*metricsAddr, telemetry.NewHandler(reg,
			telemetry.WithTraces(func() []telemetry.TraceSnapshot {
				return p.Framework().Traces().Slowest(0)
			}),
			telemetry.WithTraceLookup(traceFind),
			telemetry.WithPipelines(mgr.DebugPipelines),
			telemetry.WithReadiness(func() error {
				if rc.ActiveSubscriptions() == 0 {
					return errors.New("broker link down: no live subscriptions")
				}
				in, err := mgr.Status(*pipeline)
				if err != nil {
					return err
				}
				if in.Status == core.StatusRunning || in.Status == core.StatusCompleted {
					return nil
				}
				return fmt.Errorf("pipeline %s", in.Status)
			}),
		))
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Printf("METRICS %s\n", ms.Addr())
	}

	// READY once the broker applied the control subscription: the link is up
	// and the pipeline is deployed, so faults injected from here on land on a
	// live worker.
	for start := time.Now(); rc.ActiveSubscriptions() == 0; {
		if time.Since(start) > 30*time.Second {
			return errors.New("broker link never came up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := rc.Ping(10 * time.Second); err != nil {
		return fmt.Errorf("readiness ping: %w", err)
	}
	fmt.Printf("READY\n")
	log.Info("ready", "broker", *brokerAddr, "subject", *subject, "total", strconv.Itoa(*total))

	if err := p.Wait(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	sum, err := dumpEffects(mgr.Store(), *dumpPath)
	if err != nil {
		return err
	}
	fmt.Printf("DONE %s\n", sum)
	log.Info("done", "sha256", sum)

	// Stay up for artifact collection; the harness closes stdin (or signals)
	// when it has scraped what it needs.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stdinDone := make(chan struct{})
	go func() {
		_, _ = io.Copy(io.Discard, os.Stdin)
		close(stdinDone)
	}()
	select {
	case <-sig:
	case <-stdinDone:
	}
	return nil
}

// dumpEffects writes every durable-sink effect ("out/" key) in key order as
// "<key> <hex value>" lines — a canonical text form of the store's observable
// effects — to path (when non-empty) and returns the sha256 of those bytes.
// Two runs committed the same effects if and only if their dumps hash alike.
func dumpEffects(db *kvstore.DB, path string) (string, error) {
	var buf []byte
	err := db.ScanPrefix([]byte("out/"), func(k, v []byte) bool {
		buf = append(buf, k...)
		buf = append(buf, ' ')
		buf = appendHex(buf, v)
		buf = append(buf, '\n')
		return true
	})
	if err != nil {
		return "", err
	}
	if path != "" {
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf)), nil
}

func appendHex(dst, src []byte) []byte {
	const digits = "0123456789abcdef"
	for _, b := range src {
		dst = append(dst, digits[b>>4], digits[b&0xf])
	}
	return dst
}

// parseCrashArm parses "point[:hits]" (hits defaults to 1).
func parseCrashArm(s string) (point string, hits int, err error) {
	point, rest, found := strings.Cut(s, ":")
	hits = 1
	if found {
		hits, err = strconv.Atoi(rest)
		if err != nil || hits < 1 {
			return "", 0, fmt.Errorf("bad %s %q: hits must be a positive integer", crashEnv, s)
		}
	}
	if point == "" {
		return "", 0, fmt.Errorf("bad %s %q: empty crashpoint", crashEnv, s)
	}
	return point, hits, nil
}
