module strata

go 1.22
