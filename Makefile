GO ?= go

.PHONY: ci vet build test race bench lint

## ci: the full gate — vet, build, the test suite under the race detector,
## and the stratalint analyzers (see DESIGN.md, "Static contracts").
ci: vet build race lint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) build -o bin/strata-lint ./cmd/strata-lint
	./bin/strata-lint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
