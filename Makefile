GO ?= go

.PHONY: ci vet build test race bench

## ci: the full gate — vet, build, and the test suite under the race detector.
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
