GO ?= go

.PHONY: ci vet build test race bench lint metrics-smoke

## ci: the full gate — vet, build, the test suite under the race detector,
## and the stratalint analyzers (see DESIGN.md, "Static contracts").
ci: vet build race lint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) build -o bin/strata-lint ./cmd/strata-lint
	./bin/strata-lint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

## metrics-smoke: boot a full deployment (manager + broker + store + traced
## pipeline) behind the telemetry HTTP handler and assert /metrics serves a
## valid Prometheus exposition covering every layer, and /debug/traces a
## sampled multi-operator trace. Validation is the stdlib-only line parser
## in internal/telemetry/validate.go — no external dependencies.
metrics-smoke:
	$(GO) test -count=1 -v -run TestEndToEndMetricsSmoke ./internal/telemetry
