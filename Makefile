GO ?= go

## bench: pinned parameters so runs are comparable across commits. Override
## on the command line only for exploratory runs; committed BENCH_*.json
## files must come from the defaults.
BENCH_PKGS  := . ./internal/core ./internal/stream ./internal/pubsub ./internal/kvstore
BENCH_TIME  ?= 300ms
BENCH_COUNT ?= 1

.PHONY: ci vet build test race bench bench-smoke alloc-smoke profile lint lint-json metrics-smoke obs-smoke chaos overload e2e

## ci: the full gate — vet, build, the test suite under the race detector,
## the stratalint analyzers (see DESIGN.md, "Static contracts") diffed
## against the committed baseline with a SARIF artifact (lint-json runs the
## suite over the linter's own packages too), one -benchtime=1x pass over
## the data-plane benchmarks so the batched fast paths run under -race too,
## the kill-and-recover chaos suite, the overload degradation suite
## (DESIGN.md §11), the cross-process observability smoke (DESIGN.md §12),
## and the multi-process chaos scenarios (DESIGN.md §14).
ci: vet build race lint lint-json bench-smoke alloc-smoke chaos overload obs-smoke e2e

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the suite under the race detector, with test order shuffled so
## accidental inter-test ordering dependencies surface instead of hiding.
race:
	$(GO) test -race -shuffle=on ./...

## lint: the whole module (./... includes internal/lint itself — the
## analyzers run on their own implementation) diffed against the committed
## baseline: a new finding fails, and so does a stale baseline entry.
## After fixing or deliberately suppressing a finding, regenerate with
##   ./bin/strata-lint -baseline lint.baseline -update ./...
lint:
	$(GO) build -o bin/strata-lint ./cmd/strata-lint
	./bin/strata-lint -baseline lint.baseline ./...

## lint-json: same gate, machine-readable — emits bench-out/lint.sarif for
## code-scanning upload and exercises the SARIF path in CI.
lint-json:
	$(GO) build -o bin/strata-lint ./cmd/strata-lint
	@mkdir -p bench-out
	./bin/strata-lint -format=sarif -baseline lint.baseline ./... > bench-out/lint.sarif
	@echo "wrote bench-out/lint.sarif"

## bench: the tier-1 benchmark set (figure benches at the root plus the
## stream/pubsub/kvstore data plane), recorded as BENCH_PR9.json for
## before/after evidence in perf PRs.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run='^$$' -bench=. -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) $(BENCH_PKGS) | tee bench.out
	./bin/benchjson < bench.out > BENCH_PR9.json
	@rm -f bench.out
	@echo "wrote BENCH_PR9.json"

## bench-smoke: run every data-plane benchmark exactly once under -race.
## This is coverage of the batched fast paths, not timing.
bench-smoke:
	$(GO) test -race -run='^$$' -bench=. -benchtime=1x ./internal/core ./internal/stream ./internal/pubsub ./internal/kvstore

## alloc-smoke: enforce the committed allocation budgets on the
## zero-allocation hot paths (cell slicing through views, tuple codec
## reuse). Any allocs/op above alloc_budget.json fails the build — see
## DESIGN.md §13 "Memory model".
alloc-smoke:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run='^$$' -bench='BenchmarkAppendSplitCells' -benchtime=20x -benchmem ./internal/otimage > alloc-smoke.out
	$(GO) test -run='^$$' -bench='BenchmarkEncodeTupleAppend|BenchmarkDecodeTuple' -benchtime=1000x -benchmem ./internal/core >> alloc-smoke.out
	./bin/benchjson -budget alloc_budget.json < alloc-smoke.out
	@rm -f alloc-smoke.out

## profile: a profiled figure run for attaching pprof evidence to perf PRs.
profile:
	$(GO) build -o bin/strata-bench ./cmd/strata-bench
	./bin/strata-bench -fig 7 -reps 1 -layers 10 -cpuprofile cpu.prof -memprofile mem.prof
	@echo "inspect with: $(GO) tool pprof cpu.prof (or mem.prof)"

## chaos: the faultinject kill-and-recover suite under -race — checkpointed
## pipelines are crashed at armed crashpoints (mid-run and mid-checkpoint)
## and must recover to outputs identical to an uncrashed run (DESIGN.md §10).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/core

## overload: the graceful-degradation suite under -race (DESIGN.md §11) —
## the controller ladder, shed-gate accounting, deadline termini, circuit
## breaker, broker admission quotas, and slow-consumer eviction.
overload:
	$(GO) test -race -count=1 \
		-run 'TestOverload|TestShed|TestSinkGate|TestPauseGate|TestDeliverDurableSuppressesExpiredEffects' \
		./internal/core ./internal/stream
	$(GO) test -race -count=1 \
		-run 'TestBreaker|TestBrokerSubjectQuota|TestBrokerSlowConsumerEviction|TestCursorLagAndSkipToLatest|TestOverflowPoliciesUnderHeartbeatRedial' \
		./internal/pubsub

## metrics-smoke: boot a full deployment (manager + broker + store + traced
## pipeline) behind the telemetry HTTP handler and assert /metrics serves a
## valid Prometheus exposition covering every layer, and /debug/traces a
## sampled multi-operator trace. Validation is the stdlib-only line parser
## in internal/telemetry/validate.go — no external dependencies.
metrics-smoke:
	$(GO) test -count=1 -v -run TestEndToEndMetricsSmoke ./internal/telemetry

## obs-smoke: split one pipeline across three OS processes (source in the
## test binary, re-exec'ed broker and worker helpers) and assert a single
## sampled tuple yields ONE merged trace with span fragments from all three
## PIDs — fetched from each process's /debug/trace/<id> endpoint, the same
## join `strata-trace` performs — then SIGQUIT the worker and assert the
## flight recorder dumped flightrec-<pid>.json (DESIGN.md §12).
obs-smoke:
	$(GO) test -count=1 -v -run 'TestObsSmokeCrossProcess' ./internal/core

## e2e: the multi-process chaos scenarios (DESIGN.md §14) — a real
## strata-broker and strata-worker spawned as OS processes, their link
## routed through a fault-injecting TCP proxy, each scenario (worker
## SIGKILL, broker SIGKILL, partition, wire corruption, slow-consumer
## eviction, armed crashpoint) asserting the durable sink's dump is
## byte-identical to a fault-free run. Logs, flight-recorder dumps, and
## failure snapshots land under bench-out/e2e/<TestName>/. The -timeout is
## the hard stop: a wedged scenario fails instead of hanging CI.
e2e:
	$(GO) test -count=1 -v -timeout 300s -run 'TestE2E' ./internal/harness
