// Package strata_test holds the figure-regeneration benchmarks: one
// testing.B benchmark per figure of the paper's evaluation (Figures 4-7)
// plus the ablation benches DESIGN.md calls out. The full experiment
// harness with the paper's exact sweeps lives in cmd/strata-bench; these
// benches exercise the same code paths at a CI-friendly scale.
package strata_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"strata/internal/amsim"
	"strata/internal/bench"
	"strata/internal/cluster"
	"strata/internal/core"
)

// benchImagePx scales the OT images for benchmarking (paper: 2000).
const benchImagePx = 500

// renderedReplay caches one rendered build across benchmarks.
var renderedReplay []amsim.LayerData

func replayForBench(b *testing.B, layers int) ([]amsim.LayerData, float64) {
	b.Helper()
	layout := amsim.ScaledLayout(benchImagePx)
	if len(renderedReplay) < layers {
		job, err := amsim.NewJob("bench", layout, 2022)
		if err != nil {
			b.Fatal(err)
		}
		replay, err := bench.Replay(job, layers)
		if err != nil {
			b.Fatal(err)
		}
		renderedReplay = replay
	}
	return renderedReplay[:layers], layout.LayerMM
}

// runPipeline executes one full pipeline pass and reports cells/s and
// images/s metrics.
func runPipeline(b *testing.B, replay []amsim.LayerData, layerMM float64, params bench.PipelineParams) {
	b.Helper()
	var cells, images int64
	var latSum time.Duration
	var latN int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := bench.RunOnce(context.Background(), replay, layerMM, params,
			bench.FeedMode{}, len(replay)+8, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		cells += stats.CellsProcessed
		images += int64(stats.Layers)
		for _, l := range stats.Latencies {
			latSum += l
			latN++
		}
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(cells)/sec, "cells/s")
		b.ReportMetric(float64(images)/sec, "images/s")
	}
	if latN > 0 {
		b.ReportMetric(float64(latSum.Microseconds())/float64(latN), "latency-µs")
	}
}

// BenchmarkFig5CellSize regenerates Figure 5's x-axis: pipeline cost as the
// cell edge shrinks from 40×40 to 2×2 paper pixels.
func BenchmarkFig5CellSize(b *testing.B) {
	replay, layerMM := replayForBench(b, 12)
	for _, paperPx := range []int{40, 30, 20, 10, 5, 2} {
		edge := paperPx * benchImagePx / amsim.DefaultImagePx
		if edge < 1 {
			edge = 1
		}
		b.Run(fmt.Sprintf("cell%dx%d", paperPx, paperPx), func(b *testing.B) {
			runPipeline(b, replay, layerMM, bench.PipelineParams{
				CellEdgePx: edge, L: 10, Parallelism: 4,
			})
		})
	}
}

// BenchmarkFig6LayerWindow regenerates Figure 6's x-axis: pipeline cost as
// the correlateEvents window L grows from 5 to 80 layers.
func BenchmarkFig6LayerWindow(b *testing.B) {
	replay, layerMM := replayForBench(b, 90)
	edge := 20 * benchImagePx / amsim.DefaultImagePx
	for _, l := range []int{5, 10, 20, 40, 80} {
		b.Run(fmt.Sprintf("L%d", l), func(b *testing.B) {
			runPipeline(b, replay, layerMM, bench.PipelineParams{
				CellEdgePx: edge, L: l, Parallelism: 4,
			})
		})
	}
}

// BenchmarkFig7Throughput regenerates Figure 7's saturation measurement:
// as-fast-as-possible replay for the 20×20 and 10×10 cell sizes; the
// cells/s metric is the figure's y-axis plateau.
func BenchmarkFig7Throughput(b *testing.B) {
	replay, layerMM := replayForBench(b, 20)
	for _, paperPx := range []int{20, 10} {
		edge := paperPx * benchImagePx / amsim.DefaultImagePx
		if edge < 1 {
			edge = 1
		}
		b.Run(fmt.Sprintf("cell%dx%d", paperPx, paperPx), func(b *testing.B) {
			runPipeline(b, replay, layerMM, bench.PipelineParams{
				CellEdgePx: edge, L: 10, Parallelism: 4,
			})
		})
	}
}

// BenchmarkFig4Clustering regenerates Figure 4's computational core: DBSCAN
// over the hot/cold cells of an L-layer window of one specimen.
func BenchmarkFig4Clustering(b *testing.B) {
	// Event sets of growing size, as produced by deeper windows.
	for _, n := range []int{100, 1000, 10000} {
		rng := rand.New(rand.NewSource(4))
		pts := make([]cluster.Point, n)
		for i := range pts {
			// Clustered around a handful of defect columns plus noise.
			if i%4 == 0 {
				pts[i] = cluster.Point{X: rng.Float64() * 25, Y: rng.Float64() * 50, Z: rng.Float64()}
			} else {
				site := float64(i % 7)
				pts[i] = cluster.Point{
					X: 3*site + rng.NormFloat64()*0.5,
					Y: 6*site + rng.NormFloat64()*0.5,
					Z: rng.Float64() * 0.4,
				}
			}
		}
		b.Run(fmt.Sprintf("events%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.DBSCAN(pts, 1.0, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkDBSCANIndex compares grid-indexed DBSCAN against the naive O(n²)
// variant.
func BenchmarkDBSCANIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n = 3000
	pts := make([]cluster.Point, n)
	for i := range pts {
		pts[i] = cluster.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	b.Run("grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.DBSCAN(pts, 2, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.DBSCANNaive(pts, 2, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterDBSCANvsKMeans compares the paper's DBSCAN choice against
// the k-means baseline of earlier defect-detection work.
func BenchmarkClusterDBSCANvsKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	const n = 2000
	pts := make([]cluster.Point, n)
	for i := range pts {
		c := float64(i % 5)
		pts[i] = cluster.Point{X: 10*c + rng.NormFloat64(), Y: 10*c + rng.NormFloat64()}
	}
	b.Run("dbscan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.DBSCAN(pts, 2, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kmeans-k5", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := cluster.KMeans(pts, 5, 25, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelineParallelism sweeps the stage replication degree — the
// knob STRATA exposes because disjoint layer portions can be processed
// independently.
func BenchmarkPipelineParallelism(b *testing.B) {
	replay, layerMM := replayForBench(b, 10)
	edge := 10 * benchImagePx / amsim.DefaultImagePx
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			runPipeline(b, replay, layerMM, bench.PipelineParams{
				CellEdgePx: edge, L: 10, Parallelism: par,
			})
		})
	}
}

// BenchmarkFuseModes compares same-τ fusion against windowed fusion (the
// fuse method's two forms in Table 1).
func BenchmarkFuseModes(b *testing.B) {
	const layers = 2000
	build := func(b *testing.B, opts ...core.FuseOption) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fw, err := core.New(core.WithStoreDir(b.TempDir()))
			if err != nil {
				b.Fatal(err)
			}
			mk := func(key string) core.CollectFunc {
				return func(ctx context.Context, emit func(core.EventTuple) error) error {
					base := time.UnixMicro(0)
					for l := 1; l <= layers; l++ {
						err := emit(core.EventTuple{
							TS:    base.Add(time.Duration(l) * time.Second),
							Job:   "j",
							Layer: l,
							KV:    map[string]any{key: int64(l)},
						})
						if err != nil {
							return err
						}
					}
					return nil
				}
			}
			s1 := fw.AddSource("a", mk("a"))
			s2 := fw.AddSource("b", mk("b"))
			fused := fw.Fuse("f", s1, s2, opts...)
			count := 0
			fw.Deliver("out", fused, func(core.EventTuple) error {
				count++
				return nil
			})
			if err := fw.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			if count != layers {
				b.Fatalf("fused %d, want %d", count, layers)
			}
			fw.Close()
		}
		b.ReportMetric(float64(layers*b.N)/b.Elapsed().Seconds(), "fusions/s")
	}
	b.Run("sameTau", func(b *testing.B) { build(b) })
	b.Run("windowed", func(b *testing.B) { build(b, core.FuseWindow(time.Second/2)) })
}

// BenchmarkCorrelateMode compares batch re-clustering per window against
// the incremental streaming DBSCAN (insert new layer, evict expired) at a
// deep window — the optimization the paper's related work (pi-Lisco)
// motivates.
func BenchmarkCorrelateMode(b *testing.B) {
	replay, layerMM := replayForBench(b, 90)
	edge := 5 * benchImagePx / amsim.DefaultImagePx
	if edge < 1 {
		edge = 1
	}
	for _, mode := range []struct {
		name        string
		incremental bool
	}{{"batch", false}, {"incremental", true}} {
		b.Run(mode.name, func(b *testing.B) {
			runPipeline(b, replay, layerMM, bench.PipelineParams{
				CellEdgePx: edge, L: 80, Parallelism: 4, Incremental: mode.incremental,
			})
		})
	}
}
